(** The telemetry layer: span nesting and ordering, counters under error
    recovery, the Chrome-trace and profile renderers (parsed back with the
    in-tree JSON parser), the disabled-mode no-op guarantee, and the JSON
    module itself. *)

open Belr_support
open Belr_parser

let test name f = Alcotest.test_case name `Quick f

(** Run [f] with telemetry freshly enabled, disabling it again even if the
    test fails (telemetry is process-global state). *)
let with_telemetry (f : unit -> 'a) : 'a =
  Telemetry.reset ();
  Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) f

let check_sources src =
  let sink = Diagnostics.sink () in
  let sg = Driver.check_sources sink [ ("test.bel", src) ] in
  (sink, sg)

(* a small program that exercises hereditary substitution (dependent
   application) and unification (computation-level pattern matching) *)
let workload =
  {bel|
LF nat : type =
| z : nat
| s : nat -> nat;

LFR pos <| nat : sort =
| s : nat -> pos;

rec pred : [ |- pos] -> [ |- nat] =
fn d => case d of
| {N : [ |- nat]}
  [ |- s N] => [ |- N];
|bel}

(* --- json -------------------------------------------------------------- *)

let roundtrip j =
  match Json.parse (Json.to_string j) with
  | Ok j' -> j'
  | Error msg -> Alcotest.failf "roundtrip parse failed: %s" msg

let json_tests =
  [
    test "roundtrip: nested objects, arrays, scalars" (fun () ->
        let j =
          Json.Obj
            [
              ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
              ("b", Json.Obj [ ("t", Json.Bool true); ("f", Json.Bool false) ]);
              ("s", Json.String "plain");
              ("empty_list", Json.List []);
              ("empty_obj", Json.Obj []);
            ]
        in
        Alcotest.(check bool) "equal" true (roundtrip j = j));
    test "roundtrip: strings needing escapes" (fun () ->
        let s = "quote \" backslash \\ newline \n tab \t ctrl \x01 é" in
        Alcotest.(check bool)
          "equal" true
          (roundtrip (Json.String s) = Json.String s));
    test "parse: \\u escapes decode to UTF-8" (fun () ->
        match Json.parse {|"éA"|} with
        | Ok (Json.String s) -> Alcotest.(check string) "decoded" "éA" s
        | Ok _ -> Alcotest.fail "expected a string"
        | Error msg -> Alcotest.failf "parse failed: %s" msg);
    test "parse: numbers" (fun () ->
        Alcotest.(check bool)
          "ints and floats" true
          (Json.parse "[0, -12, 3.5, 1e3, -2.5e-1]"
          = Ok
              (Json.List
                 [
                   Json.Int 0; Json.Int (-12); Json.Float 3.5;
                   Json.Float 1000.; Json.Float (-0.25);
                 ])));
    test "parse: rejects malformed input" (fun () ->
        let bad = [ "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2" ] in
        List.iter
          (fun src ->
            match Json.parse src with
            | Ok _ -> Alcotest.failf "accepted malformed %S" src
            | Error _ -> ())
          bad);
    test "emitter degrades non-finite floats to null" (fun () ->
        Alcotest.(check bool)
          "nan is null" true
          (roundtrip (Json.Float Float.nan) = Json.Null));
  ]

(* --- spans and counters ------------------------------------------------- *)

let span_tests =
  [
    test "spans nest: children complete first, depths recorded" (fun () ->
        with_telemetry (fun () ->
            let r =
              Telemetry.with_span "outer" (fun () ->
                  let x = Telemetry.with_span ~arg:"a" "inner" (fun () -> 1) in
                  let y = Telemetry.with_span ~arg:"b" "inner" (fun () -> 2) in
                  x + y)
            in
            Alcotest.(check int) "result threaded" 3 r;
            match Telemetry.events () with
            | [ e1; e2; e3 ] ->
                Alcotest.(check (list string))
                  "completion order"
                  [ "inner"; "inner"; "outer" ]
                  [ e1.Telemetry.ev_name; e2.Telemetry.ev_name;
                    e3.Telemetry.ev_name ];
                Alcotest.(check (list string))
                  "args" [ "a"; "b" ]
                  [ e1.Telemetry.ev_arg; e2.Telemetry.ev_arg ];
                Alcotest.(check (list int))
                  "depths" [ 1; 1; 0 ]
                  [ e1.Telemetry.ev_depth; e2.Telemetry.ev_depth;
                    e3.Telemetry.ev_depth ];
                (* children lie within the parent interval *)
                let ends e =
                  Int64.add e.Telemetry.ev_start_ns e.Telemetry.ev_dur_ns
                in
                Alcotest.(check bool)
                  "child starts after parent" true
                  (e1.Telemetry.ev_start_ns >= e3.Telemetry.ev_start_ns);
                Alcotest.(check bool)
                  "child ends before parent" true
                  (ends e2 <= ends e3)
            | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)));
    test "a span is closed when its body raises" (fun () ->
        with_telemetry (fun () ->
            (try
               Telemetry.with_span "boom" (fun () -> failwith "no") |> ignore
             with Failure _ -> ());
            match Telemetry.events () with
            | [ e ] ->
                Alcotest.(check string) "recorded" "boom" e.Telemetry.ev_name;
                Alcotest.(check int) "depth restored" 0 e.Telemetry.ev_depth
            | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)));
    test "pipeline spans and kernel counters on a real check" (fun () ->
        with_telemetry (fun () ->
            let sink, _ = check_sources workload in
            Alcotest.(check int) "clean" 0 (Diagnostics.error_count sink);
            let count name =
              List.length
                (List.filter
                   (fun e -> e.Telemetry.ev_name = name)
                   (Telemetry.events ()))
            in
            Alcotest.(check int) "one file span" 1 (count "file");
            Alcotest.(check int) "three decl spans" 3 (count "decl");
            Alcotest.(check int) "one parse span" 1 (count "parse");
            let totals = Telemetry.counter_totals () in
            let total name =
              match List.assoc_opt name totals with
              | Some n -> n
              | None -> Alcotest.failf "counter %s not registered" name
            in
            Alcotest.(check bool)
              "hsub counter nonzero" true
              (total "hsub.instantiations" > 0);
            Alcotest.(check bool)
              "unify counter nonzero" true
              (total "unify.problems" > 0)));
    test "a failed declaration still closes its decl span" (fun () ->
        with_telemetry (fun () ->
            let sink, _ =
              check_sources
                (workload
               ^ "LF bad : type = | c : missing;\n\
                  LF good : type = | g : nat -> good;")
            in
            Alcotest.(check int) "one error" 1 (Diagnostics.error_count sink);
            let decls =
              List.filter
                (fun e -> e.Telemetry.ev_name = "decl")
                (Telemetry.events ())
            in
            (* 3 workload decls + the failed one + the good one *)
            Alcotest.(check int) "all five decl spans closed" 5
              (List.length decls);
            List.iter
              (fun e ->
                Alcotest.(check int) "decl depth under file" 1
                  e.Telemetry.ev_depth)
              decls));
    test "the ring buffer is bounded; aggregates are not" (fun () ->
        with_telemetry (fun () ->
            let n = 70_000 in
            for _ = 1 to n do
              Telemetry.with_span "w" (fun () -> ())
            done;
            Alcotest.(check int) "all recorded" n (Telemetry.events_recorded ());
            Alcotest.(check bool) "some dropped" true
              (Telemetry.events_dropped () > 0);
            Alcotest.(check bool)
              "ring stays bounded" true
              (List.length (Telemetry.events ()) < n);
            match Telemetry.profile_json () with
            | Json.Obj _ as p -> (
                let phases = Option.get (Json.member "phases" p) in
                match Json.to_list phases with
                | Some [ ph ] ->
                    Alcotest.(check (option int))
                      "aggregate saw every span" (Some n)
                      (Option.bind (Json.member "count" ph) Json.to_int)
                | _ -> Alcotest.fail "expected exactly one phase")
            | _ -> Alcotest.fail "profile is not an object"));
  ]

(* --- renderers ---------------------------------------------------------- *)

let renderer_tests =
  [
    test "trace output is valid Chrome trace JSON (parsed back)" (fun () ->
        with_telemetry (fun () ->
            let _ = check_sources workload in
            Telemetry.set_enabled false;
            let parsed =
              match Json.parse (Json.to_string (Telemetry.trace_json ())) with
              | Ok j -> j
              | Error msg -> Alcotest.failf "trace does not re-parse: %s" msg
            in
            let events =
              match
                Option.bind (Json.member "traceEvents" parsed) Json.to_list
              with
              | Some evs -> evs
              | None -> Alcotest.fail "no traceEvents array"
            in
            Alcotest.(check bool) "non-empty" true (List.length events > 1);
            List.iter
              (fun ev ->
                match Json.member "ph" ev with
                | Some (Json.String "M") -> ()
                | Some (Json.String "X") ->
                    let has k =
                      match Json.member k ev with
                      | Some _ -> true
                      | None -> false
                    in
                    List.iter
                      (fun k ->
                        Alcotest.(check bool)
                          (Fmt.str "event has %s" k) true (has k))
                      [ "name"; "ts"; "dur"; "pid"; "tid" ];
                    Alcotest.(check bool)
                      "ts is non-negative" true
                      (match
                         Option.bind (Json.member "ts" ev) Json.to_float
                       with
                      | Some ts -> ts >= 0.
                      | None -> false)
                | _ -> Alcotest.fail "event with unexpected phase")
              events));
    test "profile report: schema, phases, counters, watermarks" (fun () ->
        with_telemetry (fun () ->
            let _ = check_sources workload in
            Telemetry.set_enabled false;
            let p =
              match Json.parse (Json.to_string (Telemetry.profile_json ())) with
              | Ok j -> j
              | Error msg -> Alcotest.failf "profile does not re-parse: %s" msg
            in
            Alcotest.(check (option string))
              "schema" (Some "belr-profile/1")
              (Option.bind (Json.member "schema" p) Json.to_str);
            let section k =
              match Option.bind (Json.member k p) Json.to_list with
              | Some l -> l
              | None -> Alcotest.failf "missing section %s" k
            in
            let phase_names =
              List.filter_map
                (fun ph -> Option.bind (Json.member "name" ph) Json.to_str)
                (section "phases")
            in
            List.iter
              (fun required ->
                Alcotest.(check bool)
                  (Fmt.str "phase %s present" required)
                  true
                  (List.mem required phase_names))
              [ "file"; "decl"; "parse"; "elaborate" ];
            Alcotest.(check bool)
              "counters present" true
              (section "counters" <> []);
            Alcotest.(check bool)
              "watermarks present" true
              (section "watermarks" <> [])));
    test "depth watermarks surface through Limits.peaks" (fun () ->
        with_telemetry (fun () ->
            let open Belr_syntax.Lf in
            ignore
              (Belr_lf.Eta.expand_var_typ
                 ((mk_pi "x" ((mk_atom 0 [])) ((mk_atom 0 []))))
                 1);
            match List.assoc_opt "eta-expansion" (Limits.peaks ()) with
            | Some peak -> Alcotest.(check bool) "peak >= 1" true (peak >= 1)
            | None -> Alcotest.fail "eta-expansion counter not registered"));
  ]

(* --- disabled mode ------------------------------------------------------ *)

let disabled_tests =
  [
    test "disabled: counters do not move and no events are recorded"
      (fun () ->
        Telemetry.reset ();
        Telemetry.set_enabled false;
        let _ = check_sources workload in
        Alcotest.(check int) "no events" 0 (Telemetry.events_recorded ());
        List.iter
          (fun (name, total) ->
            Alcotest.(check int) (Fmt.str "counter %s still zero" name) 0 total)
          (Telemetry.counter_totals ()));
    test "disabled: with_span is the identity on results and exceptions"
      (fun () ->
        Telemetry.reset ();
        Telemetry.set_enabled false;
        Alcotest.(check int) "result" 7
          (Telemetry.with_span "x" (fun () -> 7));
        (try Telemetry.with_span "x" (fun () -> failwith "boom")
         with Failure _ -> ());
        Alcotest.(check int) "still no events" 0
          (Telemetry.events_recorded ()));
  ]

let suites =
  [
    ("telemetry:json", json_tests);
    ("telemetry:spans", span_tests);
    ("telemetry:renderers", renderer_tests);
    ("telemetry:disabled", disabled_tests);
  ]
