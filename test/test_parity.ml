(** Mutually recursive datasorts (even/odd) and totality of [half]. *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_core
open Belr_comp
open Belr_kits
open Lf

let psg = lazy (Parity.load ())

let ok name thunk = Alcotest.test_case name `Quick thunk

let fails name thunk =
  Alcotest.test_case name `Quick (fun () ->
      match thunk () with
      | exception Error.Belr_error _ -> ()
      | exception Error.Violation _ -> ()
      | _ -> Alcotest.failf "%s: expected failure" name)

let find_c sg n =
  match Sign.lookup_name sg n with
  | Some (Sign.Sym_const c) -> c
  | _ -> Alcotest.failf "%s not found" n

let find_s sg n =
  match Sign.lookup_name sg n with
  | Some (Sign.Sym_srt s) -> s
  | _ -> Alcotest.failf "%s not found" n

let church sg k =
  let z = find_c sg "z" and s = find_c sg "s" in
  let rec go k = if k = 0 then (mk_root ((mk_const z)) []) else (mk_root ((mk_const s)) ([ go (k - 1) ])) in
  go k

let tests =
  [
    ok "mutual refinement group checks" (fun () -> ignore (Lazy.force psg));
    ok "s has a sort in both families" (fun () ->
        let sg = Lazy.force psg in
        let s = find_c sg "s" in
        let even = find_s sg "even" and odd = find_s sg "odd" in
        Alcotest.(check bool)
          "even" true
          (Sign.csort sg ~const:s ~family:even <> None);
        Alcotest.(check bool)
          "odd" true
          (Sign.csort sg ~const:s ~family:odd <> None));
    ok "4 is even, 3 is odd" (fun () ->
        let sg = Lazy.force psg in
        let env = Check_lfr.make_env sg [] in
        ignore
          (Check_lfr.check_normal env Ctxs.empty_sctx (church sg 4)
             ((mk_satom (find_s sg "even") [])));
        ignore
          (Check_lfr.check_normal env Ctxs.empty_sctx (church sg 3)
             ((mk_satom (find_s sg "odd") []))));
    fails "3 is not even" (fun () ->
        let sg = Lazy.force psg in
        Check_lfr.check_normal (Check_lfr.make_env sg []) Ctxs.empty_sctx
          (church sg 3)
          ((mk_satom (find_s sg "even") [])));
    ok "half 6 = 3 (runs)" (fun () ->
        let sg = Lazy.force psg in
        let half =
          match Sign.lookup_name sg "half" with
          | Some (Sign.Sym_rec r) -> r
          | _ -> Alcotest.fail "half not found"
        in
        let hat0 = { Meta.hat_var = None; Meta.hat_names = [] } in
        let call =
          Comp.App
            (Comp.RecConst half, Comp.Box (Meta.MOTerm (hat0, church sg 6)))
        in
        match Eval.as_box (Eval.eval (Eval.make_env sg) call) with
        | Meta.MOTerm (_, m) ->
            Alcotest.(check bool) "three" true (Equal.normal m (church sg 3))
        | _ -> Alcotest.fail "expected a boxed term");
    ok "both matches of half are covered (even: z+s, odd: s only)"
      (fun () ->
        let sg = Lazy.force psg in
        let half =
          match Sign.lookup_name sg "half" with
          | Some (Sign.Sym_rec r) -> r
          | _ -> Alcotest.fail "half not found"
        in
        Alcotest.(check int)
          "no issues" 0
          (List.length (Coverage.check_rec sg half)));
    ok "conservativity: even/odd derivations erase to nat" (fun () ->
        let sg = Lazy.force psg in
        let env = Check_lfr.make_env sg [] in
        let a =
          Check_lfr.check_normal env Ctxs.empty_sctx (church sg 8)
            ((mk_satom (find_s sg "even") []))
        in
        Check_lf.check_normal (Check_lf.make_env sg []) Ctxs.empty_ctx
          (church sg 8) a);
  ]

let suites = [ ("parity", tests) ]
