(** The conventional (refinement-free) baseline development checks and
    runs — and needs strictly more machinery (E1's shape). *)

open Belr_syntax
open Belr_core
open Belr_comp
open Belr_kits
open Lf

let conv = lazy (Conventional.make ())

let ok name thunk = Alcotest.test_case name `Quick thunk

let hat_empty = { Meta.hat_var = None; Meta.hat_names = [] }

let mapps f args = List.fold_left (fun e a -> Comp.MApp (e, a)) f args

let tests =
  [
    ok "the conventional development type-checks" (fun () ->
        ignore (Lazy.force conv));
    ok "conventional ceq runs on (de-trans (de-refl id) (de-sym (de-refl id)))"
      (fun () ->
        let c = Lazy.force conv in
        let sg = c.Conventional.sg in
        let idt = (mk_root ((mk_const c.Conventional.lam)) ([ (mk_lam "x" ((mk_root ((mk_bvar 1)) []))) ])) in
        let refl = (mk_root ((mk_const c.Conventional.de_refl)) ([ idt ])) in
        let sym = (mk_root ((mk_const c.Conventional.de_sym)) ([ idt; idt; refl ])) in
        let dtrans =
          (mk_root ((mk_const c.Conventional.de_trans)) ([ idt; idt; idt; refl; sym ]))
        in
        let call =
          Comp.App
            ( mapps
                (Comp.RecConst c.Conventional.ceq)
                [
                  Meta.MOCtx Ctxs.empty_sctx;
                  Meta.MOTerm (hat_empty, idt);
                  Meta.MOTerm (hat_empty, idt);
                ],
              Comp.Box (Meta.MOTerm (hat_empty, dtrans)) )
        in
        let v = Eval.eval (Eval.make_env sg) call in
        let res =
          match Eval.as_box v with
          | Meta.MOTerm (_, m) -> m
          | _ -> Alcotest.fail "expected a boxed term"
        in
        let env = Check_lfr.make_env sg [] in
        ignore
          (Check_lfr.check_normal env Ctxs.empty_sctx res
             ((mk_sembed c.Conventional.aeq ([ idt; idt ])))));
    ok "conventional soundness runs (not free, unlike the refinement)"
      (fun () ->
        let c = Lazy.force conv in
        let sg = c.Conventional.sg in
        let idt = (mk_root ((mk_const c.Conventional.lam)) ([ (mk_lam "x" ((mk_root ((mk_bvar 1)) []))) ])) in
        (* an aeq derivation: ae-lam with the variable case *)
        let idf = (mk_lam "x" ((mk_root ((mk_bvar 1)) []))) in
        let d =
          (mk_root ((mk_const c.Conventional.ae_lam)) ([ idf; idf;
                (mk_lam "x" ((mk_lam "u" ((mk_lam "v" ((mk_root ((mk_bvar 2)) []))))))) ]))
        in
        let call =
          Comp.App
            ( mapps
                (Comp.RecConst c.Conventional.sound)
                [
                  Meta.MOCtx Ctxs.empty_sctx;
                  Meta.MOTerm (hat_empty, idt);
                  Meta.MOTerm (hat_empty, idt);
                ],
              Comp.Box (Meta.MOTerm (hat_empty, d)) )
        in
        let v = Eval.eval (Eval.make_env sg) call in
        let res =
          match Eval.as_box v with
          | Meta.MOTerm (_, m) -> m
          | _ -> Alcotest.fail "expected a boxed term"
        in
        let env = Check_lfr.make_env sg [] in
        ignore
          (Check_lfr.check_normal env Ctxs.empty_sctx res
             ((mk_sembed c.Conventional.deq ([ idt; idt ])))));
  ]

let suites = [ ("conventional", tests) ]
