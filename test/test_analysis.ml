(** The [belr lint] signature analyses: subordination (cross-checked
    against a brute-force closure), the five passes on seeded fixtures,
    clean runs over the shipped examples, the shared-sink exit-code
    contract, and the [belr-lint/1] report shape. *)

open Belr_support
open Belr_parser
module Sign = Belr_lf.Sign
module Subord = Belr_analysis.Subord
module Lint = Belr_analysis.Lint

let test name f = Alcotest.test_case name `Quick f

let check ?werror (sources : (string * string) list) =
  let sink = Diagnostics.sink ?werror () in
  let sg = Driver.check_sources sink sources in
  (sink, sg)

let lint_src ?werror src =
  let sink, sg = check ?werror [ ("test.bel", src) ] in
  let r = Driver.lint sink sg in
  (sink, sg, r)

let codes sink =
  List.map (fun (d : Diagnostics.t) -> d.Diagnostics.d_code)
    (Diagnostics.all sink)

let count code sink =
  List.length (List.filter (String.equal code) (codes sink))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let nat = "LF nat : type = | z : nat | s : nat -> nat;\n"

(* --- subordination ------------------------------------------------------- *)

(** Reference implementation: reflexive-transitive reachability over
    {!Subord.direct_edges} by depth-first search, no Floyd–Warshall. *)
let brute_leq sg =
  let edges = Subord.direct_edges sg in
  fun a b ->
    let visited = Hashtbl.create 16 in
    let rec reach x =
      x = b
      || (not (Hashtbl.mem visited x))
         && begin
              Hashtbl.replace visited x ();
              List.exists (fun (u, v) -> u = x && reach v) edges
            end
    in
    reach a

let cross_check name src () =
  let _, sg = check [ (name, src) ] in
  let sub = Subord.analyze sg in
  let reference = brute_leq sg in
  let fams = Subord.families sub in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Fmt.str "%s: %s =< %s" name (Sign.typ_entry sg a).Sign.t_name
               (Sign.typ_entry sg b).Sign.t_name)
            (reference a b) (Subord.leq sub a b))
        fams)
    fams

let planted_src =
  nat
  ^ "LF tm : type = | bad : ((tm -> tm) -> tm) -> tm;\n\
     LF vac : nat -> type = | v : {x : nat} vac z;\n\
     LF shad : nat -> type = | w : {y : nat} {y : nat} shad y;\n\
     LFR mt <| nat : sort;\n\
     LFR p1 <| nat : sort = | s : nat -> p1;\n\
     LFR p2 <| nat : sort = | s : nat -> p2;\n\
     schema gdead = | w : block (x : nat);\n\
     LF use : tm -> vac z -> shad z -> type;\n"

let subord_tests =
  [
    test "closure matches brute force on the aeq/deq signature"
      (cross_check "equal.bel" Belr_kits.Surface.signature_src);
    test "closure matches brute force on the full development"
      (cross_check "full.bel" Belr_kits.Surface.full_src);
    test "closure matches brute force on the planted lint fixture"
      (cross_check "planted.bel" planted_src);
    test "tm is subordinate to deq but not conversely" (fun () ->
        let _, sg = check [ ("s.bel", Belr_kits.Surface.signature_src) ] in
        let sub = Subord.analyze sg in
        let fam n =
          match Sign.lookup_name sg n with
          | Some (Sign.Sym_typ a) -> a
          | _ -> Alcotest.failf "%s is not a type family" n
        in
        Alcotest.(check bool) "tm =< deq" true
          (Subord.leq sub (fam "tm") (fam "deq"));
        Alcotest.(check bool) "deq =< tm" false
          (Subord.leq sub (fam "deq") (fam "tm"));
        Alcotest.(check bool) "reflexive" true
          (Subord.leq sub (fam "tm") (fam "tm"));
        Alcotest.(check bool) "not mutual" false
          (Subord.mutual sub (fam "tm") (fam "deq")));
    test "the result is exported through Lint.result" (fun () ->
        let _, _, r = lint_src Belr_kits.Surface.signature_src in
        Alcotest.(check bool) "has a cross-family pair" true
          (Subord.pairs r.Lint.lr_subord <> []));
  ]

(* --- dependents_of: the O(V+E) invalidation frontier --------------------- *)

(** Reference implementation of {!Subord.dependents_of}: plain forward
    reachability over {!Subord.direct_edges}, one DFS per seed. *)
let brute_dependents sg seeds =
  let edges = Subord.direct_edges sg in
  let seen = Hashtbl.create 16 in
  let rec visit x =
    if not (Hashtbl.mem seen x) then begin
      Hashtbl.replace seen x ();
      List.iter (fun (u, v) -> if u = x then visit v) edges
    end
  in
  List.iter visit seeds;
  List.sort compare (Hashtbl.fold (fun a () acc -> a :: acc) seen [])

let fam_named sg n =
  match Sign.lookup_name sg n with
  | Some (Sign.Sym_typ a) -> a
  | _ -> Alcotest.failf "%s is not a type family" n

(* Random signatures as one mutual LF group — mutual recursion means any
   family can reference any other, so arbitrary edge graphs (including
   cycles) are expressible.  Edge (u, v) is a constant of [fv] with
   domain [fu], i.e. [fu ≼ fv]. *)
let src_of_graph (n, edges) =
  let b = Buffer.create 256 in
  for i = 0 to n - 1 do
    Buffer.add_string b (if i = 0 then "LF " else "and ");
    Buffer.add_string b (Printf.sprintf "f%d : type =\n| k%d : f%d" i i i);
    List.iteri
      (fun j (u, v) ->
        if v = i then
          Buffer.add_string b (Printf.sprintf "\n| e%d : f%d -> f%d" j u v))
      edges;
    Buffer.add_char b '\n'
  done;
  Buffer.add_string b ";";
  Buffer.contents b

let graph_gen =
  QCheck.Gen.(
    int_range 2 5 >>= fun n ->
    let cells =
      List.concat_map
        (fun u ->
          List.filter_map
            (fun v -> if u = v then None else Some (u, v))
            (List.init n Fun.id))
        (List.init n Fun.id)
    in
    list_repeat (List.length cells) bool >>= fun flips ->
    let edges =
      List.combine cells flips |> List.filter snd |> List.map fst
    in
    return (n, edges))

let graph_print (n, edges) = src_of_graph (n, edges)

let with_graph_sig (n, edges) k =
  let sink = Diagnostics.sink () in
  let sg =
    Driver.check_sources sink [ ("gen.bel", src_of_graph (n, edges)) ]
  in
  if Diagnostics.error_count sink > 0 then
    QCheck.Test.fail_reportf "generated fixture does not check:@.%s"
      (src_of_graph (n, edges))
  else k sg

let dependents_qcheck =
  [
    QCheck.Test.make ~count:200
      ~name:
        "dependents_of agrees with brute-force reachability and with the \
         Floyd-Warshall closure on random signatures"
      (QCheck.make ~print:graph_print graph_gen)
      (fun (n, edges) ->
        with_graph_sig (n, edges) (fun sg ->
            let sub = Subord.analyze sg in
            List.for_all
              (fun i ->
                let seed = fam_named sg (Printf.sprintf "f%d" i) in
                let fast = Subord.dependents_of sg [ seed ] in
                fast = brute_dependents sg [ seed ]
                && fast
                   = List.sort compare (Subord.dependents sub [ seed ]))
              (List.init n Fun.id)));
    QCheck.Test.make ~count:100
      ~name:"dependents_of of a seed set is the union of the singletons"
      (QCheck.make ~print:graph_print graph_gen)
      (fun (n, edges) ->
        with_graph_sig (n, edges) (fun sg ->
            let seeds =
              List.init n (fun i -> fam_named sg (Printf.sprintf "f%d" i))
            in
            let union =
              List.sort_uniq compare
                (List.concat_map
                   (fun s -> Subord.dependents_of sg [ s ])
                   seeds)
            in
            Subord.dependents_of sg seeds = union));
  ]

let dependents_tests =
  [
    test "a mutual group is its own invalidation frontier" (fun () ->
        let _, sg =
          check
            [
              ( "mut.bel",
                "LF a : type = | ca : b -> a\n\
                 and b : type = | cb : a -> b;\n" );
            ]
        in
        let a = fam_named sg "a" and bf = fam_named sg "b" in
        let both = List.sort compare [ a; bf ] in
        Alcotest.(check bool) "from a" true
          (Subord.dependents_of sg [ a ] = both);
        Alcotest.(check bool) "from b" true
          (Subord.dependents_of sg [ bf ] = both);
        let sub = Subord.analyze sg in
        Alcotest.(check bool) "mutual" true (Subord.mutual sub a bf));
    test "an isolated family depends only on itself" (fun () ->
        let _, sg = check [ ("iso.bel", nat ^ "LF tm : type = | c : tm;\n") ] in
        let tm = fam_named sg "tm" in
        Alcotest.(check bool) "singleton" true
          (Subord.dependents_of sg [ tm ] = [ tm ]));
  ]
  @ List.map QCheck_alcotest.to_alcotest dependents_qcheck

(* --- the passes on seeded fixtures -------------------------------------- *)

let pass_tests =
  [
    test "W0701: a vacuous Pi-dependency is reported once" (fun () ->
        let sink, _, _ =
          lint_src
            (nat
           ^ "LF vac : nat -> type = | v : {x : nat} vac z;\n\
              LF use : vac z -> type;\n")
        in
        Alcotest.(check int) "one W0701" 1 (count "W0701" sink);
        Alcotest.(check int) "exit 0 (warning only)" 0
          (Diagnostics.exit_code sink));
    test "W0701: second-order binders that are used stay clean" (fun () ->
        let sink, _, _ =
          lint_src
            (nat
           ^ "LF fin : nat -> type = | fz : {n : nat} fin (s n);\n\
              LF use : fin (s z) -> type;\n")
        in
        Alcotest.(check int) "no W0701" 0 (count "W0701" sink));
    test "W0702: third-order negative occurrence breaks adequacy" (fun () ->
        let sink, _, _ =
          lint_src
            ("LF tm : type = | lam : (tm -> tm) -> tm | app : tm -> tm -> \
              tm;\n\
              LF bad : type = | b : ((bad -> bad) -> bad) -> bad;\n\
              LF use : tm -> bad -> type;\n")
        in
        Alcotest.(check int) "one W0702" 1 (count "W0702" sink));
    test "W0702: the canonical second-order HOAS encoding is adequate"
      (fun () ->
        let sink, _, _ =
          lint_src
            ("LF tm : type = | lam : (tm -> tm) -> tm | app : tm -> tm -> \
              tm;\n\
              LF use : tm -> type;\n")
        in
        Alcotest.(check int) "no W0702" 0 (count "W0702" sink));
    test "W0703: an empty refinement sort is reported" (fun () ->
        let sink, _, _ = lint_src (nat ^ "LFR mt <| nat : sort;\n") in
        Alcotest.(check int) "one W0703" 1 (count "W0703" sink));
    test "E0702: identical constant sets form a subsort cycle (exit 1)"
      (fun () ->
        let sink, _, _ =
          lint_src
            (nat
           ^ "LFR p1 <| nat : sort = | s : nat -> p1;\n\
              LFR p2 <| nat : sort = | s : nat -> p2;\n")
        in
        Alcotest.(check int) "one E0702" 1 (count "E0702" sink);
        Alcotest.(check int) "exit 1" 1 (Diagnostics.exit_code sink));
    test "E0702: distinct constant sets are not a cycle" (fun () ->
        let sink, _, _ =
          lint_src
            (nat
           ^ "LFR p1 <| nat : sort = | s : nat -> p1;\n\
              LFR p2 <| nat : sort = | z : p2 | s : nat -> p2;\n")
        in
        Alcotest.(check int) "no E0702" 0 (count "E0702" sink));
    test "W0704: an unreferenced schema is reported" (fun () ->
        let sink, _, _ =
          lint_src (nat ^ "schema g = | w : block (x : nat);\n")
        in
        Alcotest.(check int) "one W0704" 1 (count "W0704" sink));
    test "W0704: a schema referenced by a theorem is not reported" (fun () ->
        let sink, _, _ =
          lint_src
            (nat
           ^ "schema g = | w : block (x : nat);\n\
              rec f : (Psi : g) (M : [Psi |- nat]) [Psi |- nat] =\n\
              mlam Psi => mlam M => [Psi |- M];\n")
        in
        Alcotest.(check int) "no W0704" 0 (count "W0704" sink));
    test "W0704: constants of a referenced family are considered live"
      (fun () ->
        (* z is never written anywhere, but nat is matched on/referenced,
           so its constructors count as data of a live family *)
        let sink, _, _ = lint_src (nat ^ "LF use : nat -> type;\n") in
        Alcotest.(check int) "no W0704" 0 (count "W0704" sink));
    test "W0704: block/worlds declarations are exempt and keep their \
          family live"
      (fun () ->
        (* nothing references nat except the %block/%worlds pair; the
           declarations themselves must not be flagged either *)
        let sink, _, _ =
          lint_src
            (nat ^ "%block xb = block (x : nat);\n%worlds (xb) nat;\n")
        in
        Alcotest.(check int) "no W0704" 0 (count "W0704" sink));
    test "W0704: a schema referenced only by a mutual rec group still \
          counts as used"
      (fun () ->
        (* intra-group calls share one canonical group key, so flip
           crediting flop is inert — but the group's references to
           *other* declarations still count *)
        let sink, _, _ =
          lint_src
            (nat
           ^ "schema g = | w : block (x : nat);\n\
              rec flip : (Psi : g) (M : [Psi |- nat]) [Psi |- nat] =\n\
              mlam Psi => mlam M => flop [Psi] [Psi |- M]\n\
              and flop : (Psi : g) (M : [Psi |- nat]) [Psi |- nat] =\n\
              mlam Psi => mlam M => [Psi |- M];\n")
        in
        Alcotest.(check int) "no W0704" 0 (count "W0704" sink));
    test "W0705: a shadowed Pi binder is reported" (fun () ->
        let sink, _, _ =
          lint_src
            (nat
           ^ "LF shad : nat -> type = | w : {y : nat} {y : nat} shad y;\n\
              LF use : shad z -> type;\n")
        in
        Alcotest.(check int) "one W0705" 1 (count "W0705" sink));
    test "the five passes run in order with per-pass counts" (fun () ->
        let sink, _, r = lint_src planted_src in
        Alcotest.(check (list string))
          "pass order"
          [ "subord"; "adequacy"; "sorts"; "unused"; "shadowing" ]
          (List.map fst r.Lint.lr_passes);
        let total = List.fold_left (fun n (_, c) -> n + c) 0 r.Lint.lr_passes in
        Alcotest.(check int) "per-pass counts sum to the findings" total
          (Diagnostics.error_count sink + Diagnostics.warning_count sink));
    test "the comprehensive fixture plants every documented code (exit 1)"
      (fun () ->
        let sink, _, _ = lint_src planted_src in
        List.iter
          (fun c ->
            Alcotest.(check bool) (c ^ " planted") true
              (List.mem c (codes sink)))
          [ "W0701"; "W0702"; "W0703"; "E0702"; "W0704"; "W0705" ];
        Alcotest.(check int) "exit 1" 1 (Diagnostics.exit_code sink));
  ]

(* --- clean runs over the shipped examples -------------------------------- *)

let clean_tests =
  [
    test "the full §2 development has zero findings" (fun () ->
        let sink, _, _ = lint_src Belr_kits.Surface.full_src in
        Alcotest.(check (list string)) "no diagnostics" [] (codes sink);
        Alcotest.(check int) "exit 0" 0 (Diagnostics.exit_code sink));
    test "examples/quickstart.blr has zero findings" (fun () ->
        let src = read_file "../examples/quickstart.blr" in
        let sink, _, _ = lint_src src in
        Alcotest.(check (list string)) "no diagnostics" [] (codes sink));
    test "the emitted equal.bel has zero findings" (fun () ->
        let src = read_file "../examples/equal.bel" in
        let sink, _, _ = lint_src src in
        Alcotest.(check (list string)) "no diagnostics" [] (codes sink));
  ]

(* --- shared sink, exit codes, recovery ----------------------------------- *)

let contract_tests =
  [
    test "lint shares the sink with checking (one stream, one exit code)"
      (fun () ->
        let sink, sg =
          check [ ("t.bel", nat ^ "LF bad : type = | c : missing;\n") ]
        in
        let _ = Driver.lint sink sg in
        Alcotest.(check bool) "check error present" true
          (List.mem "E0201" (codes sink));
        Alcotest.(check int) "exit 1" 1 (Diagnostics.exit_code sink));
    test "--werror promotes lint warnings to exit 1" (fun () ->
        let sink, _, _ =
          lint_src ~werror:true (nat ^ "schema g = | w : block (x : nat);\n")
        in
        Alcotest.(check int) "exit 1" 1 (Diagnostics.exit_code sink));
    test "a crashing pass is a recovered B0002, not a lost run" (fun () ->
        let sink = Diagnostics.sink () in
        let boom =
          {
            Belr_analysis.Pass.p_name = "boom";
            p_doc = "always crashes";
            p_run = (fun _ _ -> raise Not_found);
          }
        in
        let counts =
          Belr_analysis.Pass.run_all [ boom ] (Sign.create ()) sink
        in
        Alcotest.(check (list (pair string int)))
          "pass still reports" [ ("boom", 0) ] counts;
        Alcotest.(check int) "bug recorded" 1 (Diagnostics.bug_count sink);
        Alcotest.(check int) "exit 2" 2 (Diagnostics.exit_code sink));
    test "lint phases appear as lint:<pass> telemetry spans" (fun () ->
        Telemetry.reset ();
        Telemetry.set_enabled true;
        Fun.protect
          ~finally:(fun () -> Telemetry.set_enabled false)
          (fun () ->
            let _ = lint_src Belr_kits.Surface.signature_src in
            let names =
              List.map (fun e -> e.Telemetry.ev_name) (Telemetry.events ())
            in
            List.iter
              (fun p ->
                Alcotest.(check bool) (p ^ " span recorded") true
                  (List.mem p names))
              [
                "lint"; "lint:subord"; "lint:adequacy"; "lint:sorts";
                "lint:unused"; "lint:shadowing";
              ]));
  ]

(* --- the belr-lint/1 report ---------------------------------------------- *)

let report_tests =
  [
    test "the JSON report round-trips and carries the documented shape"
      (fun () ->
        let sink, _, r = lint_src planted_src in
        let j =
          Lint.report_json ~files:[ "planted.bel" ] sink r
        in
        match Json.parse (Json.to_string j) with
        | Error msg -> Alcotest.failf "report does not re-parse: %s" msg
        | Ok j ->
            Alcotest.(check (option string))
              "schema" (Some Lint.schema_id)
              (Option.bind (Json.member "schema" j) Json.to_str);
            let findings =
              Option.bind (Json.member "findings" j) Json.to_list
              |> Option.value ~default:[]
            in
            Alcotest.(check bool) "has findings" true (findings <> []);
            List.iter
              (fun f ->
                Alcotest.(check bool) "finding has code" true
                  (Option.bind (Json.member "code" f) Json.to_str <> None);
                Alcotest.(check bool) "finding has severity" true
                  (Option.bind (Json.member "severity" f) Json.to_str <> None))
              findings;
            Alcotest.(check (option int))
              "exit_code" (Some 1)
              (Option.bind (Json.member "exit_code" j) Json.to_int);
            let summary_warnings =
              Option.bind (Json.member "summary" j) (Json.member "warnings")
              |> Fun.flip Option.bind Json.to_int
            in
            Alcotest.(check (option int))
              "summary.warnings counts the sink"
              (Some (Diagnostics.warning_count sink))
              summary_warnings);
    test "findings carry source positions from the declaration table"
      (fun () ->
        let sink, _, r = lint_src planted_src in
        let j = Lint.report_json ~files:[ "planted.bel" ] sink r in
        let findings =
          Option.bind (Json.member "findings" j) Json.to_list
          |> Option.value ~default:[]
        in
        let located =
          List.filter
            (fun f ->
              Option.bind (Json.member "file" f) Json.to_str
              = Some "test.bel")
            findings
        in
        Alcotest.(check bool) "every finding is located" true
          (List.length located = List.length findings));
  ]

let suites =
  [
    ("analysis.subordination", subord_tests);
    ("analysis.dependents", dependents_tests);
    ("analysis.passes", pass_tests);
    ("analysis.clean", clean_tests);
    ("analysis.contract", contract_tests);
    ("analysis.report", report_tests);
  ]
