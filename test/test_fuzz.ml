(** Fuzz-style regression for the fault-tolerant pipeline: mutate the seed
    example signatures at the token level and assert the checker NEVER
    throws an uncaught exception — every failure must come back as a
    rendered diagnostic (and never as an internal violation). *)

open Belr_support
open Belr_parser

(* A tiny deterministic LCG so runs are reproducible (no global RNG). *)
let lcg_next r =
  r := ((!r * 1103515245) + 12345) land 0x3FFFFFFF;
  !r

let rand r n = if n <= 0 then 0 else lcg_next r mod n

(* Token-ish fragments of the surface language, biased toward the
   punctuation that steers the parser. *)
let fragments =
  [|
    ";"; "->"; "<|"; "|-"; ".."; "=>"; "("; ")"; "["; "]"; "{"; "}"; "\\";
    "#"; "^"; "|"; ":"; "="; ","; "."; "<"; ">"; "type"; "sort"; " LF ";
    " LFR "; " rec "; " schema "; " block "; " and "; " case "; " of ";
    " fn "; " mlam "; " let "; " in "; "tm"; "aeq"; "xeW"; "Psi"; "M"; "%";
    " %mode "; "+M"; "-V"; "*A";
  |]

let mutate_once r (src : string) : string =
  let len = String.length src in
  if len = 0 then src
  else
    match rand r 3 with
    | 0 ->
        (* delete a span *)
        let pos = rand r len in
        let dlen = min (1 + rand r 24) (len - pos) in
        String.sub src 0 pos ^ String.sub src (pos + dlen) (len - pos - dlen)
    | 1 ->
        (* insert a token fragment *)
        let pos = rand r (len + 1) in
        let frag = fragments.(rand r (Array.length fragments)) in
        String.sub src 0 pos ^ frag ^ String.sub src pos (len - pos)
    | _ ->
        (* replace one character *)
        let pos = rand r len in
        let frag = fragments.(rand r (Array.length fragments)) in
        let c = frag.[rand r (String.length frag)] in
        String.sub src 0 pos ^ String.make 1 c
        ^ String.sub src (pos + 1) (len - pos - 1)

let mutate r n src =
  let rec go n src = if n = 0 then src else go (n - 1) (mutate_once r src) in
  go n src

(** Check a mutant end to end — then lint and totality-check whatever
    signature survived — and fail on any escaped exception or any
    diagnostic that fails to render.  The analyses run over
    partially-recovered signatures here, so this also fuzzes their
    defensiveness (a crashing pass must surface as a B0002 bug diagnostic
    via {!Diagnostics.recover}, which this test then rejects). *)
let never_crashes i (src : string) : unit =
  let sink = Diagnostics.sink ~max_errors:100 () in
  match
    let sg = Driver.check_sources sink [ ("fuzz.bel", src) ] in
    ignore (Driver.lint sink sg);
    ignore (Driver.total sink sg);
    ignore (Driver.worlds sink sg);
    ignore (Driver.modes sink sg)
  with
  | () ->
      let rendered = Fmt.str "%a" (fun ppf s -> Diagnostics.dump ppf s) sink in
      ignore rendered;
      if Diagnostics.bug_count sink > 0 then
        Alcotest.failf "mutant %d: internal bug diagnostic:@.%s" i rendered;
      (* every finding carries a registered code, and the exit code is
         one of the two documented values — mutants must not invent
         diagnostics or exit statuses *)
      List.iter
        (fun (d : Diagnostics.t) ->
          if
            not
              (List.exists
                 (fun c -> c.Diagnostics.cc_code = d.Diagnostics.d_code)
                 Diagnostics.registry)
          then
            Alcotest.failf "mutant %d: unregistered code %s" i
              d.Diagnostics.d_code)
        (Diagnostics.all sink);
      let ec = Diagnostics.exit_code sink in
      if ec <> 0 && ec <> 1 then
        Alcotest.failf "mutant %d: unstable exit code %d" i ec
  | exception e ->
      Alcotest.failf "mutant %d: uncaught exception %s" i
        (Printexc.to_string e)

let run_battery name seed rounds base =
  Alcotest.test_case name `Quick (fun () ->
      (* a modest depth budget keeps pathological mutants fast while still
         exercising the E0901 path; restore the default afterwards *)
      Limits.set_max_depth 2_000;
      Fun.protect
        ~finally:(fun () ->
          Limits.set_max_depth Limits.default_max_depth;
          Limits.reset ())
        (fun () ->
          let r = ref seed in
          for i = 1 to rounds do
            never_crashes i (mutate r (1 + rand r 3) base)
          done))

let tests =
  [
    run_battery "mutated LF/LFR/schema signature never crashes the checker"
      0x5EED1 60 Belr_kits.Surface.signature_src;
    run_battery "mutated full development never crashes the checker" 0x5EED2
      60 Belr_kits.Surface.full_src;
    run_battery "heavily mutated development never crashes the checker"
      0x5EED3 30
      (Belr_kits.Surface.full_src ^ Belr_kits.Surface.signature_src);
    (* the values kit ships two %mode declarations, so these mutants
       steer straight into the mode analyzer's parser and dataflow *)
    run_battery "mutated moded development never crashes the mode analyzer"
      0x5EED4 60 Belr_kits.Values.src;
  ]

let suites = [ ("fuzz", tests) ]
