(** Session isolation (DESIGN.md §S23): each {!Belr_lf.Session.t} owns
    its signature, term-store arenas, hereditary-substitution memo
    tables, and limit counters.  Two interleaved sessions must not
    observe each other, and session work must not perturb the
    process-global batch world. *)

open Belr_support
open Belr_lf
open Belr_parser

let test name f = Alcotest.test_case name `Quick f

let nat_src = "LF nat : type =\n| z : nat\n| s : nat -> nat;"

let exp_src =
  "LF exp : type =\n| lam : (exp -> exp) -> exp\n| app : exp -> exp -> exp;"

(** Check [src] inside [ses], returning the sink. *)
let check_in ses src =
  let sink = Diagnostics.sink () in
  ignore (Driver.check_sources_in ses sink [ ("test.bel", src) ]);
  sink

let has_name ses n = Sign.sym_opt (Session.sign ses) n <> None

let isolation_tests =
  [
    test "two interleaved sessions keep separate signatures" (fun () ->
        let s1 = Session.create () and s2 = Session.create () in
        ignore (check_in s1 nat_src);
        ignore (check_in s2 exp_src);
        (* interleave: extend s1 again after s2 worked *)
        ignore (check_in s1 (nat_src ^ "\n" ^ "LF b : type = | bb : b;"));
        Alcotest.(check bool) "s1 has nat" true (has_name s1 "nat");
        Alcotest.(check bool) "s1 lacks exp" false (has_name s1 "exp");
        Alcotest.(check bool) "s2 has exp" true (has_name s2 "exp");
        Alcotest.(check bool) "s2 lacks nat" false (has_name s2 "nat");
        Alcotest.(check bool) "s2 lacks b" false (has_name s2 "b"));
    test "per-session store arenas: work in one leaves the other empty"
      (fun () ->
        let s1 = Session.create () and s2 = Session.create () in
        ignore (check_in s1 nat_src);
        let interned ses =
          Session.with_ ses (fun () ->
              (Belr_syntax.Lf.store_stats ()).Belr_syntax.Lf.st_interned)
        in
        Alcotest.(check bool) "s1 interned nodes" true (interned s1 > 0);
        Alcotest.(check int) "s2 still pristine" 0 (interned s2));
    test "per-session hsub memo tables don't leak hits across sessions"
      (fun () ->
        let s1 = Session.create () and s2 = Session.create () in
        (* equal.bel's rec functions exercise hereditary substitution *)
        let src = Belr_kits.Surface.signature_src in
        ignore (check_in s1 src);
        let touches ses =
          Session.with_ ses (fun () ->
              let ms = Hsub.memo_stats () in
              ms.Hsub.ms_hits + ms.Hsub.ms_misses)
        in
        Alcotest.(check bool) "s1 memo touched" true (touches s1 > 0);
        Alcotest.(check int) "s2 memo untouched" 0 (touches s2));
    test "per-session limit counters: peaks stay with their session"
      (fun () ->
        let s1 = Session.create () and s2 = Session.create () in
        ignore (check_in s1 Belr_kits.Surface.signature_src);
        let peak ses =
          Session.with_ ses (fun () ->
              List.fold_left
                (fun acc (_, p) -> max acc p)
                0 (Limits.peaks ()))
        in
        Alcotest.(check bool) "s1 recursed" true (peak s1 > 0);
        Alcotest.(check int) "s2 peaks zero" 0 (peak s2));
    test "a depth trip in one session does not poison its sibling"
      (fun () ->
        (* force E0901 in s1 with a tiny depth budget; the same source
           then checks cleanly in s2 under the default budget *)
        let s1 = Session.create () and s2 = Session.create () in
        Limits.set_max_depth 1;
        let sink1 =
          Fun.protect
            ~finally:(fun () ->
              Limits.set_max_depth Limits.default_max_depth)
            (fun () -> check_in s1 Belr_kits.Surface.full_src)
        in
        Alcotest.(check bool)
          "s1 tripped" true
          (Diagnostics.error_count sink1 > 0);
        let sink2 = check_in s2 Belr_kits.Surface.signature_src in
        Alcotest.(check int)
          "s2 clean" 0
          (Diagnostics.error_count sink2);
        Alcotest.(check bool) "s2 has aeq" true (has_name s2 "aeq"));
    test "session work leaves the batch world's counters untouched"
      (fun () ->
        Limits.reset ();
        Limits.reset_peaks ();
        let s = Session.create () in
        ignore (check_in s Belr_kits.Surface.signature_src);
        let outer_peak =
          List.fold_left (fun acc (_, p) -> max acc p) 0 (Limits.peaks ())
        in
        Alcotest.(check int) "outer peaks still zero" 0 outer_peak);
    test "Session.reset yields a fresh world on the same handle" (fun () ->
        let s = Session.create () in
        ignore (check_in s nat_src);
        Alcotest.(check bool) "nat present" true (has_name s "nat");
        Session.reset s;
        Alcotest.(check bool) "nat gone" false (has_name s "nat");
        let sink = check_in s exp_src in
        Alcotest.(check int) "recheck clean" 0 (Diagnostics.error_count sink);
        Alcotest.(check bool) "exp present" true (has_name s "exp"));
  ]

let fault_tests =
  [
    test "an armed fault fires once as a structured B0003, then disarms"
      (fun () ->
        let s = Session.create () in
        Fun.protect ~finally:Fault.disarm (fun () ->
            Fault.arm ~site:"store-intern" ~n:1;
            let sink1 = check_in s nat_src in
            let bugs =
              List.filter
                (fun (d : Diagnostics.t) -> d.Diagnostics.d_code = "B0003")
                (Diagnostics.all sink1)
            in
            Alcotest.(check int) "one B0003" 1 (List.length bugs);
            Alcotest.(check int) "exit 2" 2 (Diagnostics.exit_code sink1);
            Alcotest.(check bool) "disarmed" false (Fault.is_armed ()));
        (* the next run on a fresh session succeeds *)
        let s2 = Session.create () in
        let sink2 = check_in s2 nat_src in
        Alcotest.(check int) "fresh run clean" 0
          (Diagnostics.error_count sink2 + Diagnostics.bug_count sink2));
    test "faults only fire at their own site" (fun () ->
        let s = Session.create () in
        Fun.protect ~finally:Fault.disarm (fun () ->
            Fault.arm ~site:"unify" ~n:1;
            let sink = check_in s nat_src in
            (* nat_src never unifies, so the fault must not fire *)
            Alcotest.(check int) "clean" 0
              (Diagnostics.error_count sink + Diagnostics.bug_count sink);
            Alcotest.(check bool) "still armed" true
              (Fault.is_armed ~site:"unify" ())));
  ]

let suites =
  [
    ("session isolation", isolation_tests); ("fault injection", fault_tests);
  ]
