(** The hash-consed term store (PR 4, DESIGN.md §S21): interning
    invariants (identical builds are physically equal; physical equality
    implies deep [Equal]), agreement of the memoized and unmemoized
    hereditary substitution (property-level and over the shipped
    examples), the always-on kernel counters, and the Shift-vs-
    Dot-expansion regression at context boundaries. *)

open Belr_support
open Belr_syntax
open Belr_lf
open Belr_kits
open Lf

let test name f = Alcotest.test_case name `Quick f

let f = Ulam.make ()

(** Run [k] with the store disabled, restoring the mode afterwards. *)
let without_store k =
  set_store_enabled false;
  Fun.protect ~finally:(fun () -> set_store_enabled true) k

(* --- generators (over the §2 signature, as in test_props) --------------- *)

(** Random closed λ-terms (tm). *)
let gen_tm : normal QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         if n <= 0 then return (Ulam.id_tm f)
         else
           frequency
             [
               (1, return (Ulam.id_tm f));
               (2, map2 (Ulam.app_tm f) (self (n / 2)) (self (n / 2)));
               ( 1,
                 map
                   (fun m ->
                     mk_root (mk_const f.Ulam.lam)
                       [ mk_lam "x" (Shift.shift_normal 1 0 m) ])
                   (self (n - 1)) );
             ])

(** Random terms over a context of [n] nat-variables. *)
let gen_nat_open (nvars : int) : normal QCheck.Gen.t =
  let open QCheck.Gen in
  sized
  @@ fix (fun self sz ->
         if sz <= 0 then
           if nvars = 0 then return (Ulam.zero f)
           else
             frequency
               [
                 (1, return (Ulam.zero f));
                 ( 2,
                   map
                     (fun i -> mk_root (mk_bvar (1 + (i mod nvars))) [])
                     small_nat );
               ]
         else frequency [ (1, map (Ulam.succ f) (self (sz - 1))); (1, self 0) ])

(* --- rebuilding through the smart constructors --------------------------- *)

(** Rebuild a term node by node through the [mk_*] constructors, keeping
    binder names.  With the store on, the result must be the same
    physical node (interning is deterministic and total). *)
let rec rebuild_normal (m : normal) : normal =
  match m with
  | Lam (x, b) -> mk_lam x (rebuild_normal b)
  | Root (h, sp) -> mk_root (rebuild_head h) (List.map rebuild_normal sp)

and rebuild_head (h : head) : head =
  match h with
  | Const c -> mk_const c
  | BVar i -> mk_bvar i
  | PVar (p, s) -> mk_pvar p (rebuild_sub s)
  | MVar (u, s) -> mk_mvar u (rebuild_sub s)
  | Proj (b, k) -> mk_proj (rebuild_head b) k

and rebuild_sub (s : sub) : sub =
  match s with
  | Empty -> mk_empty
  | Shift n -> mk_shift n
  | Dot (fr, s') ->
      let fr' =
        match fr with
        | Obj m -> Obj (rebuild_normal m)
        | Tup t -> Tup (List.map rebuild_normal t)
        | Undef -> Undef
      in
      mk_dot fr' (rebuild_sub s')

(* --- interning properties ------------------------------------------------ *)

let prop_intern_phys =
  QCheck.Test.make ~count:200
    ~name:"interning is canonical: rebuilding a term yields the same node"
    (QCheck.make gen_tm)
    (fun m -> rebuild_normal m == m)

let prop_phys_implies_deep =
  QCheck.Test.make ~count:200
    ~name:"phys-eq implies deep Equal (and the fast path agrees with it)"
    (QCheck.make (QCheck.Gen.pair gen_tm gen_tm))
    (fun (m1, m2) ->
      (* the rebuilt copy is phys-eq and must be deep-equal *)
      Equal.deep_normal m1 (rebuild_normal m1)
      (* on arbitrary pairs the phys-shortcut equality and the pure
         structural spec always agree *)
      && Equal.normal m1 m2 = Equal.deep_normal m1 m2)

let prop_uninterned_copy_equal =
  QCheck.Test.make ~count:200
    ~name:"a store-off copy is deep-equal but physically fresh"
    (QCheck.make gen_tm)
    (fun m ->
      let copy = without_store (fun () -> rebuild_normal m) in
      Equal.deep_normal m copy
      && Equal.normal m copy
      && ((not (copy == m)) || match m with Root (_, []) -> true | _ -> false))

(* --- substitution: memoized vs unmemoized -------------------------------- *)

let prop_memo_agrees =
  (* the same substitution applied with the store (mfi skips + memo) and
     without (plain traversal) gives deep-equal results *)
  let gen = QCheck.Gen.(pair (gen_nat_open 2) (gen_nat_open 1)) in
  QCheck.Test.make ~count:200
    ~name:"memoized and unmemoized hereditary substitution agree"
    (QCheck.make gen)
    (fun (m, body) ->
      let s = mk_dot (Obj body) (mk_shift 0) in
      let r_on = Hsub.sub_normal s m in
      let r_off =
        without_store (fun () ->
            let m' = rebuild_normal m in
            let s' = mk_dot (Obj (rebuild_normal body)) (mk_shift 0) in
            Hsub.sub_normal s' m')
      in
      Equal.deep_normal r_on r_off)

let prop_dot_collapse_semantics =
  (* the mk_dot normalization (↑ⁿ for its η-expansion) is semantics-
     preserving: substituting with the expanded spelling behaves exactly
     like the shift it denotes *)
  let gen = QCheck.Gen.(pair (gen_nat_open 2) (int_bound 3)) in
  QCheck.Test.make ~count:200
    ~name:"sub normalization is semantics-preserving under Hsub"
    (QCheck.make gen)
    (fun (m, n) ->
      let expanded = mk_dot (Obj (bvar (n + 1))) (mk_shift (n + 1)) in
      Equal.deep_normal
        (Hsub.sub_normal expanded m)
        (Hsub.sub_normal (mk_shift n) m))

(* --- shipped examples in both modes -------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_src src =
  let sink = Diagnostics.sink () in
  let _sg = Belr_parser.Driver.check_sources sink [ ("test.bel", src) ] in
  Diagnostics.exit_code sink

let example_tests =
  let both_modes name path =
    test (name ^ " checks identically with the store on and off") (fun () ->
        let src = read_file path in
        Alcotest.(check int) "store on" 0 (check_src src);
        Alcotest.(check int) "store off" 0
          (without_store (fun () -> check_src src)))
  in
  [
    both_modes "examples/quickstart.blr" "../examples/quickstart.blr";
    both_modes "examples/equal.bel" "../examples/equal.bel";
  ]

(* --- Shift vs Dot-expansion at context boundaries (the PR 4 bugfix) ------ *)

let boundary_tests =
  [
    test "the Dot-expanded identity equals the identity" (fun () ->
        (* the original bug: crossing a context boundary spells id as
           (1 . ↑¹), which must be equal to ↑⁰ *)
        let expanded = mk_dot (Obj (bvar 1)) (mk_shift 1) in
        Alcotest.(check bool) "Equal.sub" true (Equal.sub expanded (mk_shift 0));
        Alcotest.(check bool) "deep_sub" true
          (Equal.deep_sub expanded (mk_shift 0)));
    test "↑ⁿ equals its Dot-expansion (n+1 . ↑ⁿ⁺¹) for every n" (fun () ->
        List.iter
          (fun n ->
            let expanded = mk_dot (Obj (bvar (n + 1))) (mk_shift (n + 1)) in
            Alcotest.(check bool)
              (Fmt.str "shift %d" n)
              true
              (Equal.sub expanded (mk_shift n)
              && Equal.deep_sub expanded (mk_shift n)))
          [ 0; 1; 2; 5; 11 ]);
    test "the expanded spelling substitutes like the shift" (fun () ->
        List.iter
          (fun n ->
            let expanded = mk_dot (Obj (bvar (n + 1))) (mk_shift (n + 1)) in
            List.iter
              (fun i ->
                Alcotest.(check bool)
                  (Fmt.str "[(%d+1 . ↑%d+2)]%d" n n i)
                  true
                  (Equal.normal
                     (Hsub.sub_normal expanded (bvar i))
                     (bvar (i + n))))
              [ 1; 2; 3; 7 ])
          [ 0; 1; 3 ]);
    test "a genuinely non-shift sub stays distinct from every shift" (fun () ->
        (* (2 . ↑²) IS ↑¹ and collapses at construction; (3 . ↑¹) is not
           the expansion of any shift and must stay distinct *)
        Alcotest.(check bool) "(2 . ↑²) collapses" true
          (Equal.sub (mk_dot (Obj (bvar 2)) (mk_shift 2)) (mk_shift 1));
        let s = mk_dot (Obj (bvar 3)) (mk_shift 1) in
        Alcotest.(check bool) "≠ ↑⁰" false (Equal.sub s (mk_shift 0));
        Alcotest.(check bool) "≠ ↑¹" false (Equal.sub s (mk_shift 1));
        Alcotest.(check bool) "≠ ↑²" false (Equal.sub s (mk_shift 2));
        (* dot1 ↑⁰ short-circuits to the identity *)
        Alcotest.(check bool) "dot1 id = id" true
          (Equal.sub (Hsub.dot1 (mk_shift 0)) (mk_shift 0)));
  ]

(* --- always-on counters --------------------------------------------------- *)

let counter_tests =
  [
    test "store stats: dedup ratio ≥ 1 and live ≤ interned" (fun () ->
        (* force some construction traffic first *)
        for i = 1 to 50 do
          ignore (Ulam.app_tm f (Ulam.id_tm f) (bvar i))
        done;
        let st = store_stats () in
        Alcotest.(check bool) "interned > 0" true (st.st_interned > 0);
        Alcotest.(check bool) "live ≤ interned" true
          (st.st_live <= st.st_interned);
        Alcotest.(check bool) "dedup ratio ≥ 1" true (dedup_ratio () >= 1.0));
    test "repeating a substitution hits the memo" (fun () ->
        let m = Ulam.succ f (Ulam.succ f (bvar 1)) in
        let s = mk_dot (Obj (Ulam.zero f)) (mk_shift 0) in
        let r1 = Hsub.sub_normal s m in
        let before = Hsub.memo_stats () in
        let r2 = Hsub.sub_normal s m in
        let after = Hsub.memo_stats () in
        Alcotest.(check bool) "same node" true (r1 == r2);
        Alcotest.(check bool) "hit counted" true
          (after.Hsub.ms_hits > before.Hsub.ms_hits));
    test "equality counts its phys-eq shortcuts" (fun () ->
        let m = Ulam.app_tm f (Ulam.id_tm f) (Ulam.id_tm f) in
        let before = (Equal.phys_stats ()).Equal.ps_hits in
        Alcotest.(check bool) "equal" true (Equal.normal m (rebuild_normal m));
        let after = (Equal.phys_stats ()).Equal.ps_hits in
        Alcotest.(check bool) "hit counted" true (after > before));
  ]

let suites =
  [
    ( "store",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_intern_phys;
          prop_phys_implies_deep;
          prop_uninterned_copy_equal;
          prop_memo_agrees;
          prop_dot_collapse_semantics;
        ]
      @ example_tests @ boundary_tests @ counter_tests );
  ]
