(** The production metrics registry and structured log (DESIGN.md §S24):
    log-scale bucket boundaries and exact quantile extraction on
    synthetic samples, registry idempotence, the [belr-metrics/1] JSON
    roundtrip through the in-tree parser, the disabled-path
    no-allocation guarantee, the log's level gate and rate bound, and
    request-id presence/uniqueness across a multi-request serve
    script. *)

open Belr_support
open Belr_parser
module J = Json

let test name f = Alcotest.test_case name `Quick f

(** Run [f] with the registry enabled, restoring the previous state even
    if the test fails (the registry is process-global). *)
let with_metrics (f : unit -> 'a) : 'a =
  let saved = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled saved) f

(* --- histograms --------------------------------------------------------- *)

let histogram_tests =
  [
    test "bucket boundaries: 2^(i-1) < v <= 2^i lands in bucket i"
      (fun () ->
        List.iter
          (fun (v, want) ->
            Alcotest.(check int)
              (Fmt.str "bucket_index %d" v)
              want (Metrics.bucket_index v))
          [
            (-5, 0); (0, 0); (1, 0); (2, 1); (3, 2); (4, 2); (5, 3);
            (8, 3); (9, 4); (1024, 10); (1025, 11); (max_int, 62);
          ];
        Alcotest.(check int) "le of bucket 0" 1 (Metrics.bucket_le 0);
        Alcotest.(check int) "le of bucket 10" 1024 (Metrics.bucket_le 10));
    test "quantiles are exact on synthetic samples" (fun () ->
        with_metrics (fun () ->
            let h = Metrics.histogram "test.quantiles" in
            (* 90 observations in bucket 2 (le 4), 10 in bucket 10
               (le 1024): ranks 1..90 resolve to 4, ranks 91..100 to
               1024 *)
            for _ = 1 to 90 do
              Metrics.observe h 3
            done;
            for _ = 1 to 10 do
              Metrics.observe h 1000
            done;
            Alcotest.(check int) "count" 100 (Metrics.histogram_count h);
            Alcotest.(check int) "sum" ((90 * 3) + (10 * 1000))
              (Metrics.histogram_sum h);
            Alcotest.(check int) "p50" 4 (Metrics.quantile h 0.50);
            Alcotest.(check int) "p90" 4 (Metrics.quantile h 0.90);
            Alcotest.(check int) "p99" 1024 (Metrics.quantile h 0.99);
            Alcotest.(check int) "p100" 1024 (Metrics.quantile h 1.0)));
    test "an empty histogram reports zero quantiles" (fun () ->
        let h = Metrics.histogram "test.empty" in
        Alcotest.(check int) "p50" 0 (Metrics.quantile h 0.5);
        Alcotest.(check int) "count" 0 (Metrics.histogram_count h));
    test "a single observation is its own every-quantile" (fun () ->
        with_metrics (fun () ->
            let h = Metrics.histogram "test.single" in
            Metrics.observe h 100;
            (* 100 lands in bucket 7 (64 < 100 <= 128) *)
            List.iter
              (fun q ->
                Alcotest.(check int)
                  (Fmt.str "q=%.2f" q)
                  128 (Metrics.quantile h q))
              [ 0.01; 0.5; 0.99; 1.0 ]));
  ]

(* --- registry ----------------------------------------------------------- *)

let registry_tests =
  [
    test "creating a metric under an existing name returns the existing \
          metric" (fun () ->
        with_metrics (fun () ->
            let c1 = Metrics.counter "test.idem.counter" in
            Metrics.inc c1;
            let c2 = Metrics.counter "test.idem.counter" in
            Alcotest.(check bool) "same counter cell" true (c1 == c2);
            Metrics.inc c2;
            Alcotest.(check int) "shared count" 2 (Metrics.counter_value c1);
            let g1 = Metrics.gauge "test.idem.gauge" in
            let g2 = Metrics.gauge "test.idem.gauge" in
            Alcotest.(check bool) "same gauge cell" true (g1 == g2);
            let h1 = Metrics.histogram "test.idem.hist" in
            let h2 = Metrics.histogram "test.idem.hist" in
            Alcotest.(check bool) "same histogram cell" true (h1 == h2)));
    test "counters are monotone: add clamps negative deltas" (fun () ->
        with_metrics (fun () ->
            let c = Metrics.counter "test.monotone" in
            Metrics.add c 5;
            Metrics.add c (-3);
            Alcotest.(check int) "negative add ignored" 5
              (Metrics.counter_value c)));
    test "disabled, recording is inert" (fun () ->
        let saved = Metrics.enabled () in
        Metrics.set_enabled false;
        Fun.protect
          ~finally:(fun () -> Metrics.set_enabled saved)
          (fun () ->
            let c = Metrics.counter "test.disabled.counter" in
            let h = Metrics.histogram "test.disabled.hist" in
            Metrics.inc c;
            Metrics.observe h 42;
            Alcotest.(check int) "counter still 0" 0
              (Metrics.counter_value c);
            Alcotest.(check int) "histogram still empty" 0
              (Metrics.histogram_count h)));
    test "disabled, recording does not allocate" (fun () ->
        let saved = Metrics.enabled () in
        Metrics.set_enabled false;
        Fun.protect
          ~finally:(fun () -> Metrics.set_enabled saved)
          (fun () ->
            let c = Metrics.counter "test.noalloc.counter" in
            let g = Metrics.gauge "test.noalloc.gauge" in
            let h = Metrics.histogram "test.noalloc.hist" in
            let w0 = Gc.minor_words () in
            for i = 1 to 10_000 do
              Metrics.inc c;
              Metrics.set_int g i;
              Metrics.observe h i
            done;
            let w1 = Gc.minor_words () in
            (* the two [Gc.minor_words] calls themselves may box floats;
               anything beyond a fixed handful of words would mean a
               per-iteration allocation on the disabled path *)
            Alcotest.(check bool)
              (Fmt.str "allocated %.0f words over 10k disabled records"
                 (w1 -. w0))
              true
              (w1 -. w0 < 64.)));
  ]

(* --- belr-metrics/1 JSON ------------------------------------------------ *)

let json_tests =
  [
    test "to_json roundtrips through the in-tree parser" (fun () ->
        with_metrics (fun () ->
            let h = Metrics.histogram "test.json.hist" in
            Metrics.observe h 3;
            Metrics.observe h 1000;
            Metrics.inc (Metrics.counter "test.json.counter");
            let j = Metrics.to_json () in
            let j' =
              match J.parse (J.to_string ~compact:true j) with
              | Ok j' -> j'
              | Error msg -> Alcotest.failf "roundtrip parse failed: %s" msg
            in
            Alcotest.(check bool) "roundtrip equal" true (j = j');
            Alcotest.(check bool) "schema" true
              (J.member "schema" j' = Some (J.String Metrics.schema));
            let hist =
              match Option.bind (J.member "histograms" j') J.to_list with
              | Some hs ->
                  List.find_opt
                    (fun h ->
                      J.member "name" h = Some (J.String "test.json.hist"))
                    hs
              | None -> None
            in
            match hist with
            | None -> Alcotest.fail "test.json.hist not in report"
            | Some h ->
                Alcotest.(check bool) "count" true
                  (J.member "count" h = Some (J.Int 2));
                Alcotest.(check bool) "p50" true
                  (J.member "p50_ns" h = Some (J.Int 4));
                Alcotest.(check bool) "p99" true
                  (J.member "p99_ns" h = Some (J.Int 1024));
                (match Option.bind (J.member "buckets" h) J.to_list with
                | Some bs ->
                    Alcotest.(check int) "two non-empty buckets" 2
                      (List.length bs)
                | None -> Alcotest.fail "histogram lacks buckets")));
    test "the exposition names the serve request counter and emits \
          cumulative buckets" (fun () ->
        with_metrics (fun () ->
            let h = Metrics.histogram "test.prom.hist" in
            Metrics.observe h 3;
            Metrics.observe h 3;
            Metrics.observe h 1000;
            let text = Metrics.exposition () in
            let has sub =
              let n = String.length sub and m = String.length text in
              let rec go i =
                i + n <= m && (String.sub text i n = sub || go (i + 1))
              in
              go 0
            in
            Alcotest.(check bool) "serve counter present" true
              (has "belr_serve_requests_total");
            Alcotest.(check bool) "bucket at le=4" true
              (has "belr_test_prom_hist_bucket{le=\"4\"} 2");
            Alcotest.(check bool) "cumulative at le=1024" true
              (has "belr_test_prom_hist_bucket{le=\"1024\"} 3");
            Alcotest.(check bool) "+Inf row" true
              (has "belr_test_prom_hist_bucket{le=\"+Inf\"} 3")));
  ]

(* --- structured log ----------------------------------------------------- *)

(** Run [f] with the log writing to a fresh temp file, restoring the
    (disabled) global log state after; returns the lines written. *)
let with_log ?level ?rate (f : unit -> unit) : string list =
  let path = Filename.temp_file "belr_test_log" ".jsonl" in
  let oc = open_out path in
  Log.set_output (Some oc);
  Option.iter Log.set_level level;
  Option.iter Log.set_rate rate;
  Fun.protect
    ~finally:(fun () ->
      Log.close ();
      close_out_noerr oc;
      Log.set_level Log.Info;
      Log.set_rate Log.default_max_per_window)
    f;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in_noerr ic;
  Sys.remove path;
  List.rev !lines

let log_tests =
  [
    test "lines carry ts_ns/level/event plus caller fields, and the \
          level gate filters" (fun () ->
        let lines =
          with_log ~level:Log.Info (fun () ->
              Log.event ~level:Log.Debug "invisible" [];
              Log.event "visible" [ ("k", J.String "v") ];
              Log.event ~level:Log.Error "boom" [])
        in
        Alcotest.(check int) "debug filtered out" 2 (List.length lines);
        match List.map J.parse lines with
        | [ Ok l1; Ok l2 ] ->
            Alcotest.(check bool) "event name" true
              (J.member "event" l1 = Some (J.String "visible"));
            Alcotest.(check bool) "caller field" true
              (J.member "k" l1 = Some (J.String "v"));
            Alcotest.(check bool) "ts_ns is an int" true
              (match J.member "ts_ns" l1 with
              | Some (J.Int _) -> true
              | _ -> false);
            Alcotest.(check bool) "error level label" true
              (J.member "level" l2 = Some (J.String "error"))
        | _ -> Alcotest.fail "a log line failed to parse");
    test "the rate bound drops excess lines and counts them" (fun () ->
        let d0 = Log.dropped () in
        let lines =
          with_log ~rate:5 (fun () ->
              for i = 1 to 12 do
                Log.event "tick" [ ("i", J.Int i) ]
              done)
        in
        Alcotest.(check int) "only the cap is written" 5
          (List.length lines);
        Alcotest.(check int) "drops counted" 7 (Log.dropped () - d0));
    test "disabled, the log accepts events silently" (fun () ->
        Log.event "nowhere" [];
        Alcotest.(check bool) "disabled" false (Log.enabled ()));
  ]

(* --- request-id correlation through serve ------------------------------- *)

let request ~meth ?source id =
  let fields =
    [ ("id", Some (J.Int id)); ("method", Some (J.String meth));
      ("session", Some (J.String "rid"));
      ("source", Option.map (fun s -> J.String s) source) ]
  in
  J.to_string ~compact:true
    (J.Obj
       (List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v) fields))

let round t line =
  match Serve.handle_line t line with
  | None -> Alcotest.fail "no reply to a non-blank line"
  | Some reply -> (
      match J.parse reply with
      | Error msg -> Alcotest.failf "unparsable reply: %s" msg
      | Ok j -> j)

let rid_tests =
  [
    test "every reply carries a distinct request_id, including protocol \
          errors" (fun () ->
        let t = Serve.create () in
        let replies =
          [
            round t (request ~meth:"check" ~source:"LF nat : type;" 1);
            round t (request ~meth:"check" ~source:"LF nat : type;" 2);
            round t "{{{ not json";
            round t (request ~meth:"metrics" 4);
            round t (request ~meth:"health" 5);
          ]
        in
        let rids =
          List.map
            (fun r ->
              match Option.bind (J.member "request_id" r) J.to_str with
              | Some s -> s
              | None -> Alcotest.fail "reply lacks request_id")
            replies
        in
        Alcotest.(check int) "all ids distinct" (List.length rids)
          (List.length (List.sort_uniq compare rids)));
    test "log lines join replies on request_id" (fun () ->
        let t = Serve.create () in
        let lines =
          with_log (fun () ->
              ignore (round t (request ~meth:"check" ~source:"LF nat : type;" 1));
              ignore (round t (request ~meth:"health" 2)))
        in
        let logged_rids =
          List.filter_map
            (fun l ->
              match J.parse l with
              | Ok j
                when J.member "event" j = Some (J.String "serve.request") ->
                  Option.bind (J.member "request_id" j) J.to_str
              | _ -> None)
            lines
        in
        Alcotest.(check int) "one serve.request line per request" 2
          (List.length logged_rids);
        Alcotest.(check int) "ids distinct" 2
          (List.length (List.sort_uniq compare logged_rids)));
    test "trace spans carry the ambient request id" (fun () ->
        Telemetry.reset ();
        Telemetry.set_enabled true;
        Telemetry.set_request_id "r42";
        Telemetry.with_span "phase" (fun () -> ());
        Telemetry.clear_request_id ();
        Telemetry.set_enabled false;
        let j = Telemetry.trace_json () in
        let tagged =
          match Option.bind (J.member "traceEvents" j) J.to_list with
          | Some evs ->
              List.exists
                (fun e ->
                  match Option.bind (J.member "args" e) (J.member "request_id")
                  with
                  | Some (J.String "r42") -> true
                  | _ -> false)
                evs
          | None -> false
        in
        Alcotest.(check bool) "a span renders args.request_id" true tagged);
  ]

let suites =
  [
    ("metrics histograms", histogram_tests);
    ("metrics registry", registry_tests);
    ("metrics json", json_tests);
    ("metrics log", log_tests);
    ("metrics request ids", rid_tests);
  ]
