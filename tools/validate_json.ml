(** CI gate for machine-readable artifacts: each argument must parse as
    JSON, and recognized shapes get structural checks — a Chrome trace
    must carry a non-empty [traceEvents] array of complete/metadata
    events, a [belr-profile/1] report its [phases] and [counters]
    sections plus the hash-consing [store] section (DESIGN.md §S21), a
    [belr-lint/1] report a well-formed [findings] array (code + severity
    per entry) and a [summary], a [belr-total/1] report its [functions]
    array (name + terminating + covered per entry) plus the [callgraph],
    [findings], and [summary] sections, and a [belr-bench/1] report a
    non-empty [experiments] object of per-experiment objects.  Exit 0 iff
    every file passes; the [@smoke], [@lint], [@total], and [@bench-json]
    dune aliases fail the build otherwise. *)

module J = Belr_support.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_structure (j : J.t) : string option =
  match J.member "traceEvents" j with
  | Some events -> (
      match J.to_list events with
      | Some (_ :: _ as evs) ->
          let bad_event e =
            match J.member "ph" e with
            | Some (J.String ("X" | "M" | "B" | "E" | "C" | "i")) -> false
            | _ -> true
          in
          if List.exists bad_event evs then
            Some "a traceEvents entry is missing a valid \"ph\" phase field"
          else None
      | _ -> Some "\"traceEvents\" is not a non-empty array")
  | None -> (
      match J.member "schema" j with
      | Some (J.String "belr-profile/1") -> (
          if J.member "phases" j = None then
            Some "profile report lacks \"phases\""
          else if J.member "counters" j = None then
            Some "profile report lacks \"counters\""
          else
            match J.member "store" j with
            | Some (J.Obj _ as st) -> (
                let required =
                  [
                    "enabled";
                    "live";
                    "interned";
                    "dedup_hits";
                    "dedup_ratio";
                    "memo_hits";
                    "memo_misses";
                    "memo_hit_rate";
                    "mfi_skips";
                    "equal_phys_hits";
                    "equal_phys_misses";
                  ]
                in
                match
                  List.find_opt (fun k -> J.member k st = None) required
                with
                | Some k ->
                    Some
                      (Printf.sprintf
                         "profile \"store\" section lacks %S" k)
                | None -> None)
            | _ -> Some "profile report lacks its \"store\" object")
      | Some (J.String "belr-bench/1") -> (
          if J.member "depths" j = None then
            Some "bench report lacks \"depths\""
          else
            match J.member "experiments" j with
            | Some (J.Obj (_ :: _ as exps)) ->
                if
                  List.exists
                    (fun (_, v) ->
                      match v with J.Obj _ -> false | _ -> true)
                    exps
                then Some "an experiments entry is not an object"
                else None
            | _ -> Some "bench report lacks a non-empty \"experiments\" object")
      | Some (J.String "belr-lint/1") -> (
          match Option.bind (J.member "findings" j) J.to_list with
          | None -> Some "lint report lacks a \"findings\" array"
          | Some findings ->
              let bad_finding f =
                match (J.member "code" f, J.member "severity" f) with
                | Some (J.String _), Some (J.String _) -> false
                | _ -> true
              in
              if List.exists bad_finding findings then
                Some
                  "a findings entry is missing its \"code\" or \
                   \"severity\" string"
              else if J.member "summary" j = None then
                Some "lint report lacks \"summary\""
              else None)
      | Some (J.String "belr-total/1") -> (
          match Option.bind (J.member "functions" j) J.to_list with
          | None -> Some "total report lacks a \"functions\" array"
          | Some fns -> (
              let bad_fn f =
                match
                  ( J.member "name" f,
                    J.member "terminating" f,
                    J.member "covered" f )
                with
                | Some (J.String _), Some (J.Bool _), Some (J.Bool _) ->
                    false
                | _ -> true
              in
              if List.exists bad_fn fns then
                Some
                  "a functions entry is missing its \"name\" string or \
                   \"terminating\"/\"covered\" booleans"
              else
                match J.member "callgraph" j with
                | Some (J.Obj _) -> (
                    match Option.bind (J.member "findings" j) J.to_list with
                    | None -> Some "total report lacks a \"findings\" array"
                    | Some findings ->
                        let bad_finding f =
                          match
                            (J.member "code" f, J.member "severity" f)
                          with
                          | Some (J.String _), Some (J.String _) -> false
                          | _ -> true
                        in
                        if List.exists bad_finding findings then
                          Some
                            "a findings entry is missing its \"code\" or \
                             \"severity\" string"
                        else if J.member "summary" j = None then
                          Some "total report lacks \"summary\""
                        else None)
                | _ -> Some "total report lacks its \"callgraph\" object"))
      | _ -> None (* generic JSON (e.g. a bench report): parsing sufficed *))

let () =
  let failed = ref false in
  let report path = function
    | None -> Printf.printf "%s: ok\n" path
    | Some msg ->
        Printf.eprintf "%s: INVALID: %s\n" path msg;
        failed := true
  in
  Array.iteri
    (fun i path ->
      if i > 0 then
        match read_file path with
        | exception Sys_error msg -> report path (Some msg)
        | src -> (
            match J.parse src with
            | Error msg -> report path (Some msg)
            | Ok j -> report path (check_structure j)))
    Sys.argv;
  if !failed then exit 1
