(** CI gate for machine-readable artifacts: each argument must parse as
    JSON, and recognized shapes get structural checks — a Chrome trace
    must carry a non-empty [traceEvents] array of complete/metadata
    events, a [belr-profile/1] report its [phases] and [counters]
    sections plus the hash-consing [store] section (DESIGN.md §S21), a
    [belr-lint/1] report a well-formed [findings] array (code + severity
    per entry) and a [summary], a [belr-total/1] report its [functions]
    array (name + terminating + covered per entry) plus the [callgraph],
    [findings], and [summary] sections, a [belr-worlds/1] report its
    [functions] array (name + extension/violation/nonstrict counts +
    clean flag per entry) plus the [signature], [findings], and
    [summary] sections, a [belr-modes/1] report its [families] array
    (name + clause/illmoded/ungrounded/nonunique counts + clean flag
    per entry) plus the [signature] (modes/missing counts), [findings],
    and [summary] sections, and a [belr-bench/1] report a non-empty
    [experiments] object of per-experiment objects.

    A [.jsonl] argument is validated line by line; every non-blank line
    must parse, every [belr-serve/1] reply must carry its [id],
    [session], a valid [status], an integer [exit_code], a well-formed
    [diagnostics] array, and a [telemetry] object, and every structured
    log line (an object with an [event] field, as written by
    [serve --log]) must carry [ts_ns], a known [level], and — for
    [serve.request] lines — the request_id/session/method/status join
    fields.  After [--serve-abuse], [.jsonl] files must additionally
    satisfy the scripted-abuse contract of the [@serve] alias: at least
    one [error] reply (the injected fault), at least one [degraded]
    reply (the blown deadline), and a final reply that is [ok] with exit
    code 0 and a non-empty checked signature — the server survived the
    abuse and still checks real input.  After [--serve-metrics], reply
    streams must satisfy the [@metrics] observability contract: unique
    [request_id]s on every reply, an [error] reply from the injected
    fault, a [belr-metrics/1] reply with a populated [serve.check]
    latency histogram, and an [up] health reply.

    A [belr-metrics/1] document must carry its [counters]/[gauges]/
    [histograms] arrays (histogram entries: name, count, quantiles,
    buckets), and a [.prom] argument is checked as a Prometheus text
    exposition (every sample [belr_]-prefixed and numeric, the serve
    request counter present, at least one [_bucket{le=...}] series).
    Exit 0 iff every file passes; the [@smoke], [@lint], [@total],
    [@worlds], [@modes], [@serve], [@metrics], and [@bench-json] dune
    aliases fail the build otherwise. *)

module J = Belr_support.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_structure (j : J.t) : string option =
  match J.member "traceEvents" j with
  | Some events -> (
      match J.to_list events with
      | Some (_ :: _ as evs) ->
          let bad_event e =
            match J.member "ph" e with
            | Some (J.String ("X" | "M" | "B" | "E" | "C" | "i")) -> false
            | _ -> true
          in
          if List.exists bad_event evs then
            Some "a traceEvents entry is missing a valid \"ph\" phase field"
          else None
      | _ -> Some "\"traceEvents\" is not a non-empty array")
  | None -> (
      match J.member "schema" j with
      | Some (J.String "belr-profile/1") -> (
          if J.member "phases" j = None then
            Some "profile report lacks \"phases\""
          else if J.member "counters" j = None then
            Some "profile report lacks \"counters\""
          else
            match J.member "store" j with
            | Some (J.Obj _ as st) -> (
                let required =
                  [
                    "enabled";
                    "live";
                    "interned";
                    "dedup_hits";
                    "dedup_ratio";
                    "memo_hits";
                    "memo_misses";
                    "memo_hit_rate";
                    "mfi_skips";
                    "whnf_memo_hits";
                    "whnf_memo_misses";
                    "whnf_memo_hit_rate";
                    "whnf_forced";
                    "whnf_eager";
                    "equal_phys_hits";
                    "equal_phys_misses";
                  ]
                in
                match
                  List.find_opt (fun k -> J.member k st = None) required
                with
                | Some k ->
                    Some
                      (Printf.sprintf
                         "profile \"store\" section lacks %S" k)
                | None -> None)
            | _ -> Some "profile report lacks its \"store\" object")
      | Some (J.String "belr-bench/1") -> (
          if J.member "depths" j = None then
            Some "bench report lacks \"depths\""
          else
            match J.member "experiments" j with
            | Some (J.Obj (_ :: _ as exps)) ->
                if
                  List.exists
                    (fun (_, v) ->
                      match v with J.Obj _ -> false | _ -> true)
                    exps
                then Some "an experiments entry is not an object"
                else None
            | _ -> Some "bench report lacks a non-empty \"experiments\" object")
      | Some (J.String "belr-lint/1") -> (
          match Option.bind (J.member "findings" j) J.to_list with
          | None -> Some "lint report lacks a \"findings\" array"
          | Some findings ->
              let bad_finding f =
                match (J.member "code" f, J.member "severity" f) with
                | Some (J.String _), Some (J.String _) -> false
                | _ -> true
              in
              if List.exists bad_finding findings then
                Some
                  "a findings entry is missing its \"code\" or \
                   \"severity\" string"
              else if J.member "summary" j = None then
                Some "lint report lacks \"summary\""
              else None)
      | Some (J.String "belr-total/1") -> (
          match Option.bind (J.member "functions" j) J.to_list with
          | None -> Some "total report lacks a \"functions\" array"
          | Some fns -> (
              let bad_fn f =
                match
                  ( J.member "name" f,
                    J.member "terminating" f,
                    J.member "covered" f )
                with
                | Some (J.String _), Some (J.Bool _), Some (J.Bool _) ->
                    false
                | _ -> true
              in
              if List.exists bad_fn fns then
                Some
                  "a functions entry is missing its \"name\" string or \
                   \"terminating\"/\"covered\" booleans"
              else
                match J.member "callgraph" j with
                | Some (J.Obj _) -> (
                    match Option.bind (J.member "findings" j) J.to_list with
                    | None -> Some "total report lacks a \"findings\" array"
                    | Some findings ->
                        let bad_finding f =
                          match
                            (J.member "code" f, J.member "severity" f)
                          with
                          | Some (J.String _), Some (J.String _) -> false
                          | _ -> true
                        in
                        if List.exists bad_finding findings then
                          Some
                            "a findings entry is missing its \"code\" or \
                             \"severity\" string"
                        else if J.member "summary" j = None then
                          Some "total report lacks \"summary\""
                        else None)
                | _ -> Some "total report lacks its \"callgraph\" object"))
      | Some (J.String "belr-worlds/1") -> (
          match Option.bind (J.member "functions" j) J.to_list with
          | None -> Some "worlds report lacks a \"functions\" array"
          | Some fns -> (
              let bad_fn f =
                match
                  ( J.member "name" f,
                    J.member "extensions" f,
                    J.member "violations" f,
                    J.member "nonstrict" f,
                    J.member "clean" f )
                with
                | ( Some (J.String _),
                    Some (J.Int _),
                    Some (J.Int _),
                    Some (J.Int _),
                    Some (J.Bool _) ) ->
                    false
                | _ -> true
              in
              if List.exists bad_fn fns then
                Some
                  "a functions entry is missing its \"name\" string, its \
                   \"extensions\"/\"violations\"/\"nonstrict\" counts, or \
                   its \"clean\" boolean"
              else
                match J.member "signature" j with
                | Some (J.Obj _ as sigj) -> (
                    if J.member "blocks" sigj = None then
                      Some "worlds \"signature\" section lacks \"blocks\""
                    else if J.member "worlds" sigj = None then
                      Some "worlds \"signature\" section lacks \"worlds\""
                    else
                      match
                        Option.bind (J.member "findings" j) J.to_list
                      with
                      | None -> Some "worlds report lacks a \"findings\" array"
                      | Some findings ->
                          let bad_finding f =
                            match
                              (J.member "code" f, J.member "severity" f)
                            with
                            | Some (J.String _), Some (J.String _) -> false
                            | _ -> true
                          in
                          if List.exists bad_finding findings then
                            Some
                              "a findings entry is missing its \"code\" or \
                               \"severity\" string"
                          else if J.member "summary" j = None then
                            Some "worlds report lacks \"summary\""
                          else None)
                | _ -> Some "worlds report lacks its \"signature\" object"))
      | Some (J.String "belr-modes/1") -> (
          match Option.bind (J.member "families" j) J.to_list with
          | None -> Some "modes report lacks a \"families\" array"
          | Some fams -> (
              let bad_fam f =
                match
                  ( J.member "name" f,
                    J.member "clauses" f,
                    J.member "illmoded" f,
                    J.member "ungrounded" f,
                    J.member "nonunique" f,
                    J.member "clean" f )
                with
                | ( Some (J.String _),
                    Some (J.Int _),
                    Some (J.Int _),
                    Some (J.Int _),
                    Some (J.Int _),
                    Some (J.Bool _) ) ->
                    false
                | _ -> true
              in
              if List.exists bad_fam fams then
                Some
                  "a families entry is missing its \"name\" string, its \
                   \"clauses\"/\"illmoded\"/\"ungrounded\"/\"nonunique\" \
                   counts, or its \"clean\" boolean"
              else
                match J.member "signature" j with
                | Some (J.Obj _ as sigj) -> (
                    if J.member "modes" sigj = None then
                      Some "modes \"signature\" section lacks \"modes\""
                    else if J.member "missing" sigj = None then
                      Some "modes \"signature\" section lacks \"missing\""
                    else
                      match
                        Option.bind (J.member "findings" j) J.to_list
                      with
                      | None -> Some "modes report lacks a \"findings\" array"
                      | Some findings ->
                          let bad_finding f =
                            match
                              (J.member "code" f, J.member "severity" f)
                            with
                            | Some (J.String _), Some (J.String _) -> false
                            | _ -> true
                          in
                          if List.exists bad_finding findings then
                            Some
                              "a findings entry is missing its \"code\" or \
                               \"severity\" string"
                          else if J.member "summary" j = None then
                            Some "modes report lacks \"summary\""
                          else None)
                | _ -> Some "modes report lacks its \"signature\" object"))
      | Some (J.String "belr-metrics/1") -> (
          let arr k = Option.bind (J.member k j) J.to_list in
          match (arr "counters", arr "gauges", arr "histograms") with
          | None, _, _ -> Some "metrics report lacks a \"counters\" array"
          | _, None, _ -> Some "metrics report lacks a \"gauges\" array"
          | _, _, None -> Some "metrics report lacks a \"histograms\" array"
          | Some counters, Some _, Some hists ->
              let bad_counter c =
                match (J.member "name" c, J.member "value" c) with
                | Some (J.String _), Some (J.Int _) -> false
                | _ -> true
              in
              let bad_hist h =
                match
                  ( J.member "name" h,
                    J.member "count" h,
                    J.member "p50_ns" h,
                    J.member "p99_ns" h,
                    Option.bind (J.member "buckets" h) J.to_list )
                with
                | ( Some (J.String _),
                    Some (J.Int _),
                    Some (J.Int _),
                    Some (J.Int _),
                    Some _ ) ->
                    false
                | _ -> true
              in
              if List.exists bad_counter counters then
                Some
                  "a counters entry is missing its \"name\" string or \
                   integer \"value\""
              else if List.exists bad_hist hists then
                Some
                  "a histograms entry is missing \"name\", \"count\", \
                   \"p50_ns\", \"p99_ns\", or its \"buckets\" array"
              else None)
      | _ -> None (* generic JSON (e.g. a bench report): parsing sufficed *))

(* --- belr-serve/1 reply streams ----------------------------------------- *)

let check_serve_reply (j : J.t) : string option =
  let has k = J.member k j <> None in
  if not (has "id") then Some "serve reply lacks \"id\""
  else
    match J.member "session" j with
    | Some (J.String _) -> (
        match J.member "status" j with
        | Some (J.String ("ok" | "degraded" | "error")) -> (
            match J.member "exit_code" j with
            | Some (J.Int _) -> (
                match Option.bind (J.member "diagnostics" j) J.to_list with
                | None -> Some "serve reply lacks a \"diagnostics\" array"
                | Some diags -> (
                    let bad d =
                      match (J.member "code" d, J.member "severity" d) with
                      | Some (J.String _), Some (J.String _) -> false
                      | _ -> true
                    in
                    if List.exists bad diags then
                      Some
                        "a serve diagnostic is missing its \"code\" or \
                         \"severity\" string"
                    else
                      match J.member "telemetry" j with
                      | Some (J.Obj _) -> None
                      | _ -> Some "serve reply lacks a \"telemetry\" object"))
            | _ -> Some "serve reply lacks an integer \"exit_code\"")
        | _ ->
            Some
              "serve reply \"status\" is not one of ok, degraded, error")
    | _ -> Some "serve reply lacks a \"session\" string"

let status_of j =
  match J.member "status" j with Some (J.String s) -> s | _ -> ""

(** The scripted-abuse contract (see [examples/dune], alias [@serve]):
    the stream must show the server absorbing a fault ([error]), a blown
    deadline ([degraded]), and still end with a successful check of a
    real signature. *)
let check_abuse_contract (replies : J.t list) : string option =
  if not (List.exists (fun r -> status_of r = "error") replies) then
    Some "abuse stream has no \"error\" reply (fault not exercised)"
  else if not (List.exists (fun r -> status_of r = "degraded") replies) then
    Some "abuse stream has no \"degraded\" reply (deadline not exercised)"
  else
    match List.rev replies with
    | [] -> Some "abuse stream is empty"
    | last :: _ ->
        if status_of last <> "ok" then
          Some "abuse stream's final reply is not \"ok\""
        else if J.member "exit_code" last <> Some (J.Int 0) then
          Some "abuse stream's final reply has a nonzero exit code"
        else
          let typs =
            Option.bind (J.member "result" last) (fun r ->
                Option.bind (J.member "summary" r) (J.member "typs"))
          in
          (match typs with
          | Some (J.Int n) when n > 0 -> None
          | _ ->
              Some
                "abuse stream's final reply checked an empty signature \
                 (summary.typs is not positive)")

(* --- structured log streams (--log FILE) -------------------------------- *)

(** One [Log.event] line: monotonic [ts_ns], a known [level], an [event]
    name; [serve.request] lines must additionally carry the join fields
    documented in DESIGN.md §S24. *)
let check_log_line (j : J.t) : string option =
  match J.member "ts_ns" j with
  | Some (J.Int _) -> (
      match J.member "level" j with
      | Some (J.String ("debug" | "info" | "warn" | "error")) -> (
          match J.member "event" j with
          | Some (J.String ev) ->
              if ev <> "serve.request" then None
              else
                let required =
                  [ "request_id"; "session"; "method"; "status" ]
                in
                (match
                   List.find_opt
                     (fun k ->
                       match J.member k j with
                       | Some (J.String _) -> false
                       | _ -> true)
                     required
                 with
                | Some k ->
                    Some
                      (Printf.sprintf
                         "serve.request log line lacks its %S string" k)
                | None -> None)
          | _ -> Some "log line lacks an \"event\" string"
          )
      | _ -> Some "log line \"level\" is not debug, info, warn, or error")
  | _ -> Some "log line lacks an integer \"ts_ns\""

(** The observability contract (see [examples/dune], alias [@metrics]):
    the scripted stream must show the injected fault as an [error]
    reply, a [metrics] reply whose [belr-metrics/1] payload has a
    populated [serve.check] latency histogram, a [health] reply that is
    [up], and a distinct [request_id] on every reply. *)
let check_metrics_contract (replies : J.t list) : string option =
  let rids =
    List.filter_map
      (fun r ->
        match J.member "request_id" r with
        | Some (J.String s) -> Some s
        | _ -> None)
      replies
  in
  if List.length rids <> List.length replies then
    Some "a reply lacks its \"request_id\" string"
  else if List.length (List.sort_uniq compare rids) <> List.length rids then
    Some "request ids are not unique across the stream"
  else if not (List.exists (fun r -> status_of r = "error") replies) then
    Some "metrics stream has no \"error\" reply (fault not exercised)"
  else
    let metrics_reply =
      List.find_opt
        (fun r ->
          match J.member "result" r with
          | Some res ->
              J.member "schema" res = Some (J.String "belr-metrics/1")
          | None -> false)
        replies
    in
    match metrics_reply with
    | None -> Some "metrics stream has no belr-metrics/1 reply"
    | Some r -> (
        let check_hist =
          Option.bind (J.member "result" r) (fun res ->
              Option.bind (J.member "histograms" res) (fun hs ->
                  Option.bind (J.to_list hs) (fun hs ->
                      List.find_opt
                        (fun h ->
                          J.member "name" h
                          = Some (J.String "serve.check"))
                        hs)))
        in
        match check_hist with
        | None -> Some "metrics reply lacks the \"serve.check\" histogram"
        | Some h -> (
            (match J.member "count" h with
            | Some (J.Int n) when n >= 1 -> None
            | _ -> Some "\"serve.check\" histogram has an empty count")
            |> function
            | Some _ as e -> e
            | None -> (
                match J.member "p50_ns" h with
                | Some (J.Int n) when n > 0 -> (
                    let health_up =
                      List.exists
                        (fun r ->
                          match J.member "result" r with
                          | Some res ->
                              J.member "status" res
                              = Some (J.String "up")
                          | None -> false)
                        replies
                    in
                    if health_up then None
                    else
                      Some
                        "metrics stream has no health reply with status \
                         \"up\"")
                | _ -> Some "\"serve.check\" histogram has p50_ns <= 0")))

let check_jsonl ~abuse ~metrics (src : string) : string option =
  let replies = ref [] in
  let log_lines = ref 0 in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None && String.trim line <> "" then
        match J.parse line with
        | Error msg -> err := Some (Printf.sprintf "line %d: %s" (i + 1) msg)
        | Ok j ->
            let fail = function
              | Some msg ->
                  err := Some (Printf.sprintf "line %d: %s" (i + 1) msg)
              | None -> ()
            in
            if J.member "schema" j = Some (J.String "belr-serve/1") then begin
              fail (check_serve_reply j);
              replies := j :: !replies
            end
            else if J.member "event" j <> None then begin
              fail (check_log_line j);
              incr log_lines
            end)
    (String.split_on_char '\n' src);
  match !err with
  | Some _ as e -> e
  | None ->
      if !replies = [] && !log_lines = 0 then
        Some "no belr-serve/1 replies or log events in stream"
      else if abuse then check_abuse_contract (List.rev !replies)
      else if metrics then check_metrics_contract (List.rev !replies)
      else None

(* --- Prometheus text exposition (--metrics FILE) ------------------------ *)

(** Every non-comment line must be [name value] with a [belr_]-prefixed
    name and a numeric value; the file must expose the serve request
    counter and at least one histogram bucket series. *)
let check_prom (src : string) : string option =
  let err = ref None in
  let samples = ref 0 in
  let has_requests = ref false in
  let has_bucket = ref false in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if !err = None && line <> "" && line.[0] <> '#' then
        match String.index_opt line ' ' with
        | None ->
            err :=
              Some
                (Printf.sprintf "line %d: not a \"name value\" sample"
                   (i + 1))
        | Some sp ->
            let name = String.sub line 0 sp in
            let value =
              String.sub line (sp + 1) (String.length line - sp - 1)
            in
            if not (String.length name > 5 && String.sub name 0 5 = "belr_")
            then
              err :=
                Some
                  (Printf.sprintf
                     "line %d: series %S lacks the belr_ prefix" (i + 1)
                     name)
            else if float_of_string_opt (String.trim value) = None then
              err :=
                Some
                  (Printf.sprintf "line %d: value %S is not numeric" (i + 1)
                     value)
            else begin
              incr samples;
              if name = "belr_serve_requests_total" then
                has_requests := true;
              let is_sub sub s =
                let n = String.length sub and m = String.length s in
                let rec go i =
                  i + n <= m && (String.sub s i n = sub || go (i + 1))
                in
                go 0
              in
              if is_sub "_bucket{le=" name then has_bucket := true
            end)
    (String.split_on_char '\n' src);
  match !err with
  | Some _ as e -> e
  | None ->
      if !samples = 0 then Some "exposition has no samples"
      else if not !has_requests then
        Some "exposition lacks belr_serve_requests_total"
      else if not !has_bucket then
        Some "exposition has no _bucket{le=...} histogram series"
      else None

let () =
  let failed = ref false in
  let abuse = ref false in
  let metrics = ref false in
  let report path = function
    | None -> Printf.printf "%s: ok\n" path
    | Some msg ->
        Printf.eprintf "%s: INVALID: %s\n" path msg;
        failed := true
  in
  Array.iteri
    (fun i path ->
      if i > 0 then
        if path = "--serve-abuse" then abuse := true
        else if path = "--serve-metrics" then metrics := true
        else
          match read_file path with
          | exception Sys_error msg -> report path (Some msg)
          | src ->
              if Filename.check_suffix path ".jsonl" then
                report path (check_jsonl ~abuse:!abuse ~metrics:!metrics src)
              else if Filename.check_suffix path ".prom" then
                report path (check_prom src)
              else (
                match J.parse src with
                | Error msg -> report path (Some msg)
                | Ok j -> report path (check_structure j)))
    Sys.argv;
  if !failed then exit 1

