(** CI gate for machine-readable artifacts: each argument must parse as
    JSON, and recognized shapes get structural checks — a Chrome trace
    must carry a non-empty [traceEvents] array of complete/metadata
    events, a [belr-profile/1] report its [phases] and [counters]
    sections plus the hash-consing [store] section (DESIGN.md §S21), a
    [belr-lint/1] report a well-formed [findings] array (code + severity
    per entry) and a [summary], a [belr-total/1] report its [functions]
    array (name + terminating + covered per entry) plus the [callgraph],
    [findings], and [summary] sections, and a [belr-bench/1] report a
    non-empty [experiments] object of per-experiment objects.

    A [.jsonl] argument is validated line by line; every non-blank line
    must parse and every [belr-serve/1] reply must carry its [id],
    [session], a valid [status], an integer [exit_code], a well-formed
    [diagnostics] array, and a [telemetry] object.  After [--serve-abuse],
    [.jsonl] files must additionally satisfy the scripted-abuse contract
    of the [@serve] alias: at least one [error] reply (the injected
    fault), at least one [degraded] reply (the blown deadline), and a
    final reply that is [ok] with exit code 0 and a non-empty checked
    signature — the server survived the abuse and still checks real
    input.  Exit 0 iff every file passes; the [@smoke], [@lint],
    [@total], [@serve], and [@bench-json] dune aliases fail the build
    otherwise. *)

module J = Belr_support.Json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_structure (j : J.t) : string option =
  match J.member "traceEvents" j with
  | Some events -> (
      match J.to_list events with
      | Some (_ :: _ as evs) ->
          let bad_event e =
            match J.member "ph" e with
            | Some (J.String ("X" | "M" | "B" | "E" | "C" | "i")) -> false
            | _ -> true
          in
          if List.exists bad_event evs then
            Some "a traceEvents entry is missing a valid \"ph\" phase field"
          else None
      | _ -> Some "\"traceEvents\" is not a non-empty array")
  | None -> (
      match J.member "schema" j with
      | Some (J.String "belr-profile/1") -> (
          if J.member "phases" j = None then
            Some "profile report lacks \"phases\""
          else if J.member "counters" j = None then
            Some "profile report lacks \"counters\""
          else
            match J.member "store" j with
            | Some (J.Obj _ as st) -> (
                let required =
                  [
                    "enabled";
                    "live";
                    "interned";
                    "dedup_hits";
                    "dedup_ratio";
                    "memo_hits";
                    "memo_misses";
                    "memo_hit_rate";
                    "mfi_skips";
                    "equal_phys_hits";
                    "equal_phys_misses";
                  ]
                in
                match
                  List.find_opt (fun k -> J.member k st = None) required
                with
                | Some k ->
                    Some
                      (Printf.sprintf
                         "profile \"store\" section lacks %S" k)
                | None -> None)
            | _ -> Some "profile report lacks its \"store\" object")
      | Some (J.String "belr-bench/1") -> (
          if J.member "depths" j = None then
            Some "bench report lacks \"depths\""
          else
            match J.member "experiments" j with
            | Some (J.Obj (_ :: _ as exps)) ->
                if
                  List.exists
                    (fun (_, v) ->
                      match v with J.Obj _ -> false | _ -> true)
                    exps
                then Some "an experiments entry is not an object"
                else None
            | _ -> Some "bench report lacks a non-empty \"experiments\" object")
      | Some (J.String "belr-lint/1") -> (
          match Option.bind (J.member "findings" j) J.to_list with
          | None -> Some "lint report lacks a \"findings\" array"
          | Some findings ->
              let bad_finding f =
                match (J.member "code" f, J.member "severity" f) with
                | Some (J.String _), Some (J.String _) -> false
                | _ -> true
              in
              if List.exists bad_finding findings then
                Some
                  "a findings entry is missing its \"code\" or \
                   \"severity\" string"
              else if J.member "summary" j = None then
                Some "lint report lacks \"summary\""
              else None)
      | Some (J.String "belr-total/1") -> (
          match Option.bind (J.member "functions" j) J.to_list with
          | None -> Some "total report lacks a \"functions\" array"
          | Some fns -> (
              let bad_fn f =
                match
                  ( J.member "name" f,
                    J.member "terminating" f,
                    J.member "covered" f )
                with
                | Some (J.String _), Some (J.Bool _), Some (J.Bool _) ->
                    false
                | _ -> true
              in
              if List.exists bad_fn fns then
                Some
                  "a functions entry is missing its \"name\" string or \
                   \"terminating\"/\"covered\" booleans"
              else
                match J.member "callgraph" j with
                | Some (J.Obj _) -> (
                    match Option.bind (J.member "findings" j) J.to_list with
                    | None -> Some "total report lacks a \"findings\" array"
                    | Some findings ->
                        let bad_finding f =
                          match
                            (J.member "code" f, J.member "severity" f)
                          with
                          | Some (J.String _), Some (J.String _) -> false
                          | _ -> true
                        in
                        if List.exists bad_finding findings then
                          Some
                            "a findings entry is missing its \"code\" or \
                             \"severity\" string"
                        else if J.member "summary" j = None then
                          Some "total report lacks \"summary\""
                        else None)
                | _ -> Some "total report lacks its \"callgraph\" object"))
      | _ -> None (* generic JSON (e.g. a bench report): parsing sufficed *))

(* --- belr-serve/1 reply streams ----------------------------------------- *)

let check_serve_reply (j : J.t) : string option =
  let has k = J.member k j <> None in
  if not (has "id") then Some "serve reply lacks \"id\""
  else
    match J.member "session" j with
    | Some (J.String _) -> (
        match J.member "status" j with
        | Some (J.String ("ok" | "degraded" | "error")) -> (
            match J.member "exit_code" j with
            | Some (J.Int _) -> (
                match Option.bind (J.member "diagnostics" j) J.to_list with
                | None -> Some "serve reply lacks a \"diagnostics\" array"
                | Some diags -> (
                    let bad d =
                      match (J.member "code" d, J.member "severity" d) with
                      | Some (J.String _), Some (J.String _) -> false
                      | _ -> true
                    in
                    if List.exists bad diags then
                      Some
                        "a serve diagnostic is missing its \"code\" or \
                         \"severity\" string"
                    else
                      match J.member "telemetry" j with
                      | Some (J.Obj _) -> None
                      | _ -> Some "serve reply lacks a \"telemetry\" object"))
            | _ -> Some "serve reply lacks an integer \"exit_code\"")
        | _ ->
            Some
              "serve reply \"status\" is not one of ok, degraded, error")
    | _ -> Some "serve reply lacks a \"session\" string"

let status_of j =
  match J.member "status" j with Some (J.String s) -> s | _ -> ""

(** The scripted-abuse contract (see [examples/dune], alias [@serve]):
    the stream must show the server absorbing a fault ([error]), a blown
    deadline ([degraded]), and still end with a successful check of a
    real signature. *)
let check_abuse_contract (replies : J.t list) : string option =
  if not (List.exists (fun r -> status_of r = "error") replies) then
    Some "abuse stream has no \"error\" reply (fault not exercised)"
  else if not (List.exists (fun r -> status_of r = "degraded") replies) then
    Some "abuse stream has no \"degraded\" reply (deadline not exercised)"
  else
    match List.rev replies with
    | [] -> Some "abuse stream is empty"
    | last :: _ ->
        if status_of last <> "ok" then
          Some "abuse stream's final reply is not \"ok\""
        else if J.member "exit_code" last <> Some (J.Int 0) then
          Some "abuse stream's final reply has a nonzero exit code"
        else
          let typs =
            Option.bind (J.member "result" last) (fun r ->
                Option.bind (J.member "summary" r) (J.member "typs"))
          in
          (match typs with
          | Some (J.Int n) when n > 0 -> None
          | _ ->
              Some
                "abuse stream's final reply checked an empty signature \
                 (summary.typs is not positive)")

let check_jsonl ~abuse (src : string) : string option =
  let replies = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None && String.trim line <> "" then
        match J.parse line with
        | Error msg -> err := Some (Printf.sprintf "line %d: %s" (i + 1) msg)
        | Ok j ->
            if J.member "schema" j = Some (J.String "belr-serve/1") then (
              (match check_serve_reply j with
              | Some msg ->
                  err := Some (Printf.sprintf "line %d: %s" (i + 1) msg)
              | None -> ());
              replies := j :: !replies))
    (String.split_on_char '\n' src);
  match !err with
  | Some _ as e -> e
  | None ->
      if !replies = [] then Some "no belr-serve/1 replies in stream"
      else if abuse then check_abuse_contract (List.rev !replies)
      else None

let () =
  let failed = ref false in
  let abuse = ref false in
  let report path = function
    | None -> Printf.printf "%s: ok\n" path
    | Some msg ->
        Printf.eprintf "%s: INVALID: %s\n" path msg;
        failed := true
  in
  Array.iteri
    (fun i path ->
      if i > 0 then
        if path = "--serve-abuse" then abuse := true
        else
          match read_file path with
          | exception Sys_error msg -> report path (Some msg)
          | src ->
              if Filename.check_suffix path ".jsonl" then
                report path (check_jsonl ~abuse:!abuse src)
              else (
                match J.parse src with
                | Error msg -> report path (Some msg)
                | Ok j -> report path (check_structure j)))
    Sys.argv;
  if !failed then exit 1
