(** The [belr] command-line interface.

    - [belr check FILE…]   parse, elaborate, sort-check, and run the
      conservativity translation on each file (later files see the
      declarations of earlier ones).
    - [belr lint FILE…]    check, then run the signature analyses
      (subordination, adequacy, dead sorts, unused declarations,
      shadowing); findings are diagnostics with stable W07xx/E0702 codes,
      and [--json FILE] writes the machine-readable [belr-lint/1] report.

    Checking is fault-tolerant: every independent error in a pass is
    reported (one declaration failing does not hide the rest), rendered
    diagnostics carry stable codes (see the Diagnostics section of
    README.md), and runaway recursion is cut off by a configurable depth
    budget instead of crashing the process.

    Diagnostics (errors, warnings, notes) go to stderr; stdout carries
    only the machine-readable summary.  Exit codes: 0 = clean (warnings
    allowed unless [--werror]), 1 = user errors, 2 = an internal belr bug
    was detected. *)

open Cmdliner
open Belr_support

let summarize sg =
  let s = Belr_lf.Sign.summary sg in
  Fmt.pr "signature: %d type families, %d sort families, %d constants,@."
    s.Belr_lf.Sign.n_typs s.Belr_lf.Sign.n_srts s.Belr_lf.Sign.n_consts;
  Fmt.pr "           %d schemas, %d refinement schemas, %d functions@."
    s.Belr_lf.Sign.n_schemas s.Belr_lf.Sign.n_sschemas
    s.Belr_lf.Sign.n_recs

let print_recs sg =
  List.iter
    (fun (_, (r : Belr_lf.Sign.rec_entry)) ->
      Fmt.pr "rec %s : %a@." r.Belr_lf.Sign.r_name
        (Belr_syntax.Pp.pp_ctyp (Belr_lf.Sign.pp_env sg))
        r.Belr_lf.Sign.r_styp)
    (List.sort compare (Belr_lf.Sign.all_recs sg))

(** Write a telemetry artifact, reporting an I/O failure as an [E0701]
    diagnostic rather than an uncaught exception. *)
let write_report sink path json =
  try Json.write_file path json
  with Sys_error msg ->
    Diagnostics.emit sink
      (Diagnostics.make ~code:"E0701" Diagnostics.Error
         "cannot write report %s: %s" path msg)

(** Write the Prometheus-style metrics exposition ([--metrics FILE]),
    with the same I/O-failure story as {!write_report}. *)
let write_metrics sink path =
  try Metrics.write_exposition path
  with Sys_error msg ->
    Diagnostics.emit sink
      (Diagnostics.make ~code:"E0701" Diagnostics.Error
         "cannot write metrics %s: %s" path msg)

(** One-line kernel summary for [--kernel-stats].  Reads the always-on
    integer counters of the term store, the hereditary-substitution memo
    table, the weak-head normalizer, and the equality fast path — no
    [--stats] instrumentation required, so the line is accurate even on
    plain runs. *)
let print_kernel_stats () =
  let st = Belr_syntax.Lf.store_stats () in
  let ms = Belr_lf.Hsub.memo_stats () in
  let ws = Belr_lf.Whnf.stats () in
  let ps = Belr_syntax.Equal.phys_stats () in
  Fmt.epr
    "kernel: store %s (live %d, interned %d, dedup hits %d, ratio %.2f); \
     hsub memo %d hit / %d miss (rate %.2f), mfi skips %d; whnf %s, memo \
     %d hit / %d miss (rate %.2f), forced %d, eager %d; equal phys-eq \
     %d hit / %d miss@."
    (if Belr_syntax.Lf.store_enabled () then "on" else "off")
    st.Belr_syntax.Lf.st_live st.Belr_syntax.Lf.st_interned
    st.Belr_syntax.Lf.st_dedup_hits
    (Belr_syntax.Lf.dedup_ratio ())
    ms.Belr_lf.Hsub.ms_hits ms.Belr_lf.Hsub.ms_misses
    (Belr_lf.Hsub.memo_hit_rate ())
    ms.Belr_lf.Hsub.ms_mfi_skips
    (if Belr_lf.Whnf.whnf_enabled () then "on" else "off")
    ws.Belr_lf.Whnf.ws_hits ws.Belr_lf.Whnf.ws_misses
    (Belr_lf.Whnf.hit_rate ())
    ws.Belr_lf.Whnf.ws_forced ws.Belr_lf.Whnf.ws_eager
    ps.Belr_syntax.Equal.ps_hits ps.Belr_syntax.Equal.ps_misses

let print_lint_results sg (lr : Belr_analysis.Lint.result) =
  Fmt.pr "analysis passes:@.";
  List.iter
    (fun (name, findings) -> Fmt.pr "  %-12s %d finding(s)@." name findings)
    lr.Belr_analysis.Lint.lr_passes;
  Fmt.pr "%a" (Belr_analysis.Subord.pp sg) lr.Belr_analysis.Lint.lr_subord

let term_label (f : Belr_comp.Totality.fn_verdict) =
  match f.Belr_comp.Totality.fv_term with
  | Belr_comp.Totality.TTotal -> "terminating"
  | Belr_comp.Totality.TDiverging _ -> "possibly diverging"
  | Belr_comp.Totality.TGaveUp -> "termination unknown (budget)"
  | Belr_comp.Totality.TUnknown -> "termination unknown (analysis failed)"

let print_total_results (tr : Belr_comp.Totality.result) =
  Fmt.pr "callgraph: %d function(s), %d call site(s), %d SCC(s), %d composed \
          graph(s)@."
    (List.length tr.Belr_comp.Totality.tr_fns)
    tr.Belr_comp.Totality.tr_sites tr.Belr_comp.Totality.tr_sccs
    tr.Belr_comp.Totality.tr_composed;
  List.iter
    (fun (f : Belr_comp.Totality.fn_verdict) ->
      Fmt.pr "total %s : %s, %s (%d case(s))%s@." f.Belr_comp.Totality.fv_name
        (term_label f)
        (if Belr_comp.Totality.covered f then "covered" else "non-exhaustive")
        f.Belr_comp.Totality.fv_cases
        (match f.Belr_comp.Totality.fv_group with
        | [ _ ] -> ""
        | g -> "  [group: " ^ String.concat ", " g ^ "]"))
    tr.Belr_comp.Totality.tr_fns

let print_worlds_results (wr : Belr_analysis.Worlds.result) =
  Fmt.pr "signature: %d block(s), %d worlds declaration(s)@."
    wr.Belr_analysis.Worlds.wr_blocks wr.Belr_analysis.Worlds.wr_worlds;
  List.iter
    (fun (f : Belr_analysis.Worlds.fn_report) ->
      Fmt.pr "worlds %s : %s (%d extension(s), %d familie(s) checked)%s@."
        f.Belr_analysis.Worlds.wf_name
        (if Belr_analysis.Worlds.clean f then "clean" else "dirty")
        f.Belr_analysis.Worlds.wf_exts f.Belr_analysis.Worlds.wf_fams
        (if f.Belr_analysis.Worlds.wf_nonstrict > 0 then
           Printf.sprintf "  [%d non-strict pattern variable(s)]"
             f.Belr_analysis.Worlds.wf_nonstrict
         else ""))
    wr.Belr_analysis.Worlds.wr_fns

let print_modes_results (mr : Belr_analysis.Modes.result) =
  Fmt.pr "signature: %d mode declaration(s), %d missing@."
    mr.Belr_analysis.Modes.mr_modes mr.Belr_analysis.Modes.mr_missing;
  List.iter
    (fun (f : Belr_analysis.Modes.fam_report) ->
      Fmt.pr "modes %s : %s (%d clause(s), %d input(s), %d output(s))%s@."
        f.Belr_analysis.Modes.mf_name
        (if Belr_analysis.Modes.clean f then "clean" else "dirty")
        f.Belr_analysis.Modes.mf_clauses f.Belr_analysis.Modes.mf_inputs
        f.Belr_analysis.Modes.mf_outputs
        (if f.Belr_analysis.Modes.mf_sorted then "  [sort-level]" else ""))
    mr.Belr_analysis.Modes.mr_fams

let run_worlds files verbose json no_strict max_errors max_depth
    max_eval_steps werror stats trace profile kernel_stats =
  Limits.set_max_depth max_depth;
  Limits.set_eval_fuel max_eval_steps;
  let telemetry = stats || trace <> None || profile <> None in
  if telemetry then begin
    Telemetry.reset ();
    Telemetry.set_enabled true
  end;
  let sink = Diagnostics.sink ~max_errors ~werror () in
  let sg = Belr_parser.Driver.check_files sink files in
  let wr = Belr_parser.Driver.worlds ~check_strict:(not no_strict) sink sg in
  if telemetry then begin
    Telemetry.set_enabled false;
    Option.iter (fun f -> write_report sink f (Telemetry.trace_json ())) trace;
    Option.iter
      (fun f -> write_report sink f (Telemetry.profile_json ()))
      profile
  end;
  (* written on every exit path: a report full of findings is the point *)
  Option.iter
    (fun f ->
      write_report sink f (Belr_analysis.Worlds.report_json ~files sink wr))
    json;
  Diagnostics.dump Fmt.stderr sink;
  if stats then Fmt.epr "%a@?" Telemetry.pp_stats ();
  if kernel_stats then print_kernel_stats ();
  match Diagnostics.exit_code sink with
  | 0 ->
      Fmt.pr "%d file(s) worlds-checked: %a.@." (List.length files)
        Diagnostics.pp_summary sink;
      if verbose then print_worlds_results wr;
      0
  | code ->
      Fmt.epr "worlds failed: %a.@." Diagnostics.pp_summary sink;
      code

let run_modes files verbose json max_errors max_depth max_eval_steps werror
    stats trace profile kernel_stats =
  Limits.set_max_depth max_depth;
  Limits.set_eval_fuel max_eval_steps;
  let telemetry = stats || trace <> None || profile <> None in
  if telemetry then begin
    Telemetry.reset ();
    Telemetry.set_enabled true
  end;
  let sink = Diagnostics.sink ~max_errors ~werror () in
  let sg = Belr_parser.Driver.check_files sink files in
  let mr = Belr_parser.Driver.modes sink sg in
  if telemetry then begin
    Telemetry.set_enabled false;
    Option.iter (fun f -> write_report sink f (Telemetry.trace_json ())) trace;
    Option.iter
      (fun f -> write_report sink f (Telemetry.profile_json ()))
      profile
  end;
  (* written on every exit path: a report full of findings is the point *)
  Option.iter
    (fun f ->
      write_report sink f (Belr_analysis.Modes.report_json ~files sink mr))
    json;
  Diagnostics.dump Fmt.stderr sink;
  if stats then Fmt.epr "%a@?" Telemetry.pp_stats ();
  if kernel_stats then print_kernel_stats ();
  match Diagnostics.exit_code sink with
  | 0 ->
      Fmt.pr "%d file(s) mode-checked: %a.@." (List.length files)
        Diagnostics.pp_summary sink;
      if verbose then print_modes_results mr;
      0
  | code ->
      Fmt.epr "modes failed: %a.@." Diagnostics.pp_summary sink;
      code

let run_total files verbose json depth budget max_errors max_depth
    max_eval_steps werror stats trace profile kernel_stats =
  Limits.set_max_depth max_depth;
  Limits.set_eval_fuel max_eval_steps;
  let telemetry = stats || trace <> None || profile <> None in
  if telemetry then begin
    Telemetry.reset ();
    Telemetry.set_enabled true
  end;
  let sink = Diagnostics.sink ~max_errors ~werror () in
  let sg = Belr_parser.Driver.check_files sink files in
  let tr = Belr_parser.Driver.total ~depth ~budget sink sg in
  if telemetry then begin
    Telemetry.set_enabled false;
    Option.iter (fun f -> write_report sink f (Telemetry.trace_json ())) trace;
    Option.iter
      (fun f -> write_report sink f (Telemetry.profile_json ()))
      profile
  end;
  (* written on every exit path: a report full of findings is the point *)
  Option.iter
    (fun f ->
      write_report sink f (Belr_comp.Totality.report_json ~files sink tr))
    json;
  Diagnostics.dump Fmt.stderr sink;
  if stats then Fmt.epr "%a@?" Telemetry.pp_stats ();
  if kernel_stats then print_kernel_stats ();
  match Diagnostics.exit_code sink with
  | 0 ->
      Fmt.pr "%d file(s) totality-checked: %a.@." (List.length files)
        Diagnostics.pp_summary sink;
      if verbose then print_total_results tr;
      0
  | code ->
      Fmt.epr "total failed: %a.@." Diagnostics.pp_summary sink;
      code

let run_check files verbose total lint worlds modes max_errors max_depth
    max_eval_steps werror stats trace profile kernel_stats metrics =
  Limits.set_max_depth max_depth;
  Limits.set_eval_fuel max_eval_steps;
  let telemetry = stats || trace <> None || profile <> None in
  if telemetry then begin
    Telemetry.reset ();
    Telemetry.set_enabled true
  end;
  if metrics <> None then Metrics.set_enabled true;
  let sink = Diagnostics.sink ~max_errors ~werror () in
  let sg = Belr_parser.Driver.check_files sink files in
  if total then Belr_parser.Driver.analyze sink sg;
  if worlds then ignore (Belr_parser.Driver.worlds sink sg);
  if modes then ignore (Belr_parser.Driver.modes sink sg);
  let lint_result =
    if lint then Some (Belr_parser.Driver.lint sink sg) else None
  in
  if telemetry then begin
    (* stop recording before rendering, so the renderers observe a
       stable state *)
    Telemetry.set_enabled false;
    Option.iter (fun f -> write_report sink f (Telemetry.trace_json ())) trace;
    Option.iter
      (fun f -> write_report sink f (Telemetry.profile_json ()))
      profile
  end;
  Option.iter (fun f -> write_metrics sink f) metrics;
  Diagnostics.dump Fmt.stderr sink;
  if stats then Fmt.epr "%a@?" Telemetry.pp_stats ();
  if kernel_stats then print_kernel_stats ();
  match Diagnostics.exit_code sink with
  | 0 ->
      Fmt.pr "%d file(s) checked successfully.@." (List.length files);
      summarize sg;
      if verbose then begin
        print_recs sg;
        Option.iter (print_lint_results sg) lint_result
      end;
      0
  | code ->
      Fmt.epr "check failed: %a.@." Diagnostics.pp_summary sink;
      code

let run_lint files verbose total worlds modes only skip json max_errors
    max_depth max_eval_steps werror stats trace profile kernel_stats =
  Limits.set_max_depth max_depth;
  Limits.set_eval_fuel max_eval_steps;
  (* the pass-name converter validates [--only]/[--skip] at parse time,
     so selection cannot fail here; keep the hard error anyway in case a
     pass is ever unregistered between parsing and running *)
  let passes =
    match Belr_analysis.Passes.select ~only ~skip () with
    | Result.Ok ps -> ps
    | Result.Error msg ->
        Fmt.epr "belr lint: %s@." msg;
        exit 124
  in
  let telemetry = stats || trace <> None || profile <> None in
  if telemetry then begin
    Telemetry.reset ();
    Telemetry.set_enabled true
  end;
  let sink = Diagnostics.sink ~max_errors ~werror () in
  let sg = Belr_parser.Driver.check_files sink files in
  let lr = Belr_parser.Driver.lint ~passes sink sg in
  if total then ignore (Belr_parser.Driver.total sink sg);
  if worlds then ignore (Belr_parser.Driver.worlds sink sg);
  if modes then ignore (Belr_parser.Driver.modes sink sg);
  if telemetry then begin
    Telemetry.set_enabled false;
    Option.iter (fun f -> write_report sink f (Telemetry.trace_json ())) trace;
    Option.iter
      (fun f -> write_report sink f (Telemetry.profile_json ()))
      profile
  end;
  (* written on every exit path: a report full of findings is the point *)
  Option.iter
    (fun f ->
      write_report sink f (Belr_analysis.Lint.report_json ~files sink lr))
    json;
  Diagnostics.dump Fmt.stderr sink;
  if stats then Fmt.epr "%a@?" Telemetry.pp_stats ();
  if kernel_stats then print_kernel_stats ();
  match Diagnostics.exit_code sink with
  | 0 ->
      Fmt.pr "%d file(s) linted: %a.@." (List.length files)
        Diagnostics.pp_summary sink;
      if verbose then print_lint_results sg lr;
      0
  | code ->
      Fmt.epr "lint failed: %a.@." Diagnostics.pp_summary sink;
      code

let run_serve deadline_ms max_live_nodes max_errors max_depth max_eval_steps
    log_file log_level slow_ms metrics =
  Limits.set_eval_fuel max_eval_steps;
  (* The structured log opens before the first request and closes after
     the loop; an unopenable path is a startup error (exit 1), not a
     silently disabled log. *)
  let log_oc =
    match log_file with
    | None -> None
    | Some path -> (
        match open_out path with
        | oc ->
            Log.set_output (Some oc);
            (match Log.level_of_string log_level with
            | Some l -> Log.set_level l
            | None ->
                Fmt.epr "belr serve: unknown log level %S (use debug, \
                         info, warn, or error)@." log_level);
            Some oc
        | exception Sys_error msg ->
            Fmt.epr "belr serve: cannot open log %s: %s@." path msg;
            exit 1)
  in
  let t =
    Belr_parser.Serve.create ?deadline_ms ~max_depth ~max_errors
      ?watermark:max_live_nodes ?slow_ms ()
  in
  Belr_parser.Serve.run t stdin stdout;
  (match metrics with
  | Some path -> (
      try Metrics.write_exposition path
      with Sys_error msg ->
        Fmt.epr "belr serve: cannot write metrics %s: %s@." path msg)
  | None -> ());
  Log.close ();
  Option.iter close_out_noerr log_oc;
  0

(** [belr codes]: dump the diagnostics registry — the single source of
    truth for every stable code belr can emit — as an aligned table, or
    as the markdown table embedded in README.md ([--markdown]). *)
let run_codes markdown =
  if markdown then print_string (Diagnostics.registry_markdown ())
  else
    List.iter
      (fun (c : Diagnostics.code_class) ->
        Fmt.pr "%-6s  %-8s %-8s %s@." c.Diagnostics.cc_code
          (Diagnostics.code_family c.Diagnostics.cc_code)
          (Diagnostics.severity_label c.Diagnostics.cc_severity)
          c.Diagnostics.cc_doc)
      Diagnostics.registry;
  0

let files_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"FILE" ~doc:"source files (checked in order)")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"print checked functions")

let total_arg =
  Arg.(
    value & flag
    & info [ "total" ]
        ~doc:
          "also run the totality analyzer (the paper's §6.1 extensions): \
           size-change termination over the call graph and depth-bounded \
           coverage, reported on stderr with stable codes (E0710 \
           non-terminating cycle, W0711 missing cases, W0712 gave up)")

let total_json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "write the machine-readable totality report (schema \
           belr-total/1: per-function verdicts, call-graph statistics, \
           every diagnostic with code and location, summary, exit code) \
           to $(docv)")

let split_depth_arg =
  Arg.(
    value & opt int 3
    & info [ "split-depth" ] ~docv:"N"
        ~doc:
          "maximum nesting depth of coverage splitting; deeper patterns \
           make the analysis give up with W0712 rather than guess")

let sct_budget_arg =
  Arg.(
    value & opt int 4096
    & info [ "sct-budget" ] ~docv:"N"
        ~doc:
          "maximum number of distinct composed size-change graphs per \
           recursion component; exceeding it makes the analysis give up \
           with W0712 rather than loop")

let worlds_flag_arg =
  Arg.(
    value & flag
    & info [ "worlds" ]
        ~doc:
          "also run the regular-worlds + strictness analyzer (Twelf-style \
           $(b,%block) / $(b,%worlds) declarations): context-schema \
           subsumption up to refinement subsorting and subordination \
           strengthening, plus strict-occurrence checking of case \
           patterns, reported with stable codes (E0720 extension outside \
           the declared worlds, W0721 missing %worlds declaration, W0722 \
           non-strict pattern variable)")

let worlds_json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "write the machine-readable worlds report (schema belr-worlds/1: \
           per-function extension/family/violation counts, signature \
           block/worlds counts, every diagnostic with code and location, \
           summary, exit code) to $(docv)")

let modes_flag_arg =
  Arg.(
    value & flag
    & info [ "modes" ]
        ~doc:
          "also run the mode & uniqueness analyzer (Twelf-style $(b,%mode) \
           declarations): a groundness dataflow checks that every clause \
           of a moded family can schedule its premises so inputs are \
           ground before each call and outputs are ground afterwards, and \
           a uniqueness pass flags input-overlapping clauses with \
           divergent rigid outputs; findings carry stable codes (E0730 \
           ill-moded clause, E0731 ungroundable output, W0732 missing \
           %mode declaration, W0733 non-unique output)")

let modes_json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "write the machine-readable modes report (schema belr-modes/1: \
           per-family clause/input/output/violation counts, signature \
           mode/missing counts, every diagnostic with code and location, \
           summary, exit code) to $(docv)")

let pass_name_conv =
  let known () =
    List.map (fun p -> p.Belr_analysis.Pass.p_name) Belr_analysis.Passes.all
  in
  let parse s =
    if List.mem s (known ()) then Ok s
    else
      Error
        (`Msg
           (Printf.sprintf "unknown lint pass %s (expected one of: %s)" s
              (String.concat ", " (known ()))))
  in
  Arg.conv ~docv:"PASS" (parse, Fmt.string)

let only_arg =
  Arg.(
    value
    & opt (list pass_name_conv) []
    & info [ "only" ] ~docv:"PASS[,PASS…]"
        ~doc:
          "run only the named lint passes, in registry order (subord, \
           adequacy, sorts, unused, shadowing); naming an unknown pass \
           is a hard error, not a silent no-op")

let skip_arg =
  Arg.(
    value
    & opt (list pass_name_conv) []
    & info [ "skip" ] ~docv:"PASS[,PASS…]"
        ~doc:
          "run every lint pass except the named ones; naming an unknown \
           pass is a hard error, not a silent no-op")

let no_strict_arg =
  Arg.(
    value & flag
    & info [ "no-strict" ]
        ~doc:
          "skip the strict-occurrence pass (W0722); only the worlds \
           subsumption checks run")

let lint_flag_arg =
  Arg.(
    value & flag
    & info [ "lint" ]
        ~doc:
          "also run the signature analyses (subordination, adequacy, dead \
           sorts, unused declarations, shadowing) after checking; \
           findings carry stable W07xx/E0702 codes and share the \
           diagnostic stream and exit code with checking")

let lint_json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "write the machine-readable lint report (schema belr-lint/1: \
           per-pass finding counts, every diagnostic with code and \
           location, summary, exit code) to $(docv)")

let max_errors_arg =
  Arg.(
    value & opt int 20
    & info [ "max-errors" ] ~docv:"N"
        ~doc:
          "stop after reporting $(docv) errors (0 = no limit); warnings \
           and notes do not count")

let max_depth_arg =
  Arg.(
    value & opt int Limits.default_max_depth
    & info [ "max-depth" ] ~docv:"N"
        ~doc:
          "depth budget for hereditary substitution, eta-expansion, and \
           unification; exceeding it yields the E0901 resource \
           diagnostic instead of a crash")

let max_eval_steps_arg =
  Arg.(
    value & opt int Limits.default_eval_fuel
    & info [ "max-eval-steps" ] ~docv:"N"
        ~doc:
          "step budget for evaluating mechanized proofs (each call, \
           application, box, and match counts as one step); exceeding it \
           yields the E0905 resource diagnostic instead of a hang, so \
           $(b,--max-errors), $(b,--werror), and the exit code apply to \
           runaway evaluation like any other error")

let werror_arg =
  Arg.(
    value & flag
    & info [ "werror" ] ~doc:"treat warnings as errors (exit code 1)")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "print a telemetry summary (per-phase wall time, kernel \
           operation counters, peak recursion depths) on stderr after \
           checking")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "write a Chrome trace-event JSON timeline of the pipeline to \
           $(docv) (load it in chrome://tracing or ui.perfetto.dev)")

let profile_arg =
  Arg.(
    value & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "write a machine-readable JSON performance report (per-phase \
           wall time, counter totals, depth watermarks) to $(docv); the \
           schema is documented in README.md (Observability)")

let kernel_stats_arg =
  Arg.(
    value & flag
    & info [ "kernel-stats" ]
        ~doc:
          "print a one-line summary of the hash-consing term store \
           (DESIGN.md S21) on stderr after checking: live/interned node \
           counts, dedup ratio, hereditary-substitution memo hit rate, \
           weak-head normalization memo/forcing counters (DESIGN.md \
           S26), and equality fast-path hits; unlike $(b,--stats) this \
           reads always-on counters and needs no instrumentation (set \
           BELR_NO_HASHCONS=1 to disable the store itself, \
           BELR_NO_WHNF=1 to fall back to eager substitution)")

let metrics_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "write a Prometheus-style text exposition of the metrics \
           registry (counters, gauges, latency histograms; all series \
           carry the belr_ prefix) to $(docv) on exit; the same data is \
           available as JSON (schema belr-metrics/1) from the serve \
           $(b,metrics) method")

let check_cmd =
  let doc = "parse, elaborate, and sort-check source files" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const (fun files v t li wo mo me md ev we st tr pr ks mx ->
          run_check files v t li wo mo me md ev we st tr pr ks mx)
      $ files_arg $ verbose_arg $ total_arg $ lint_flag_arg $ worlds_flag_arg
      $ modes_flag_arg $ max_errors_arg $ max_depth_arg $ max_eval_steps_arg
      $ werror_arg $ stats_arg $ trace_arg $ profile_arg $ kernel_stats_arg
      $ metrics_arg)

let lint_cmd =
  let doc =
    "check source files, then run the signature analyses (subordination, \
     adequacy, dead sorts, unused declarations, shadowing); filter them \
     with $(b,--only) / $(b,--skip), and add $(b,--total), $(b,--worlds), \
     or $(b,--modes) to fold those analyzers into the same stream"
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const (fun files v t wo mo on sk js me md ev we st tr pr ks ->
          run_lint files v t wo mo on sk js me md ev we st tr pr ks)
      $ files_arg $ verbose_arg $ total_arg $ worlds_flag_arg
      $ modes_flag_arg $ only_arg $ skip_arg $ lint_json_arg
      $ max_errors_arg $ max_depth_arg $ max_eval_steps_arg $ werror_arg
      $ stats_arg $ trace_arg $ profile_arg $ kernel_stats_arg)

let total_cmd =
  let doc =
    "check source files, then run the totality analyzer: size-change \
     termination (Lee-Jones-Ben-Amram closure over the call graph, \
     accepting mutual recursion and lexicographic descent) and \
     depth-bounded refinement-aware coverage; verdicts carry stable \
     codes (E0710, W0711, W0712) and $(b,--json) writes the belr-total/1 \
     report"
  in
  Cmd.v
    (Cmd.info "total" ~doc)
    Term.(
      const (fun files v js sd sb me md ev we st tr pr ks ->
          run_total files v js sd sb me md ev we st tr pr ks)
      $ files_arg $ verbose_arg $ total_json_arg $ split_depth_arg
      $ sct_budget_arg $ max_errors_arg $ max_depth_arg $ max_eval_steps_arg
      $ werror_arg $ stats_arg $ trace_arg $ profile_arg $ kernel_stats_arg)

let worlds_cmd =
  let doc =
    "check source files, then run the regular-worlds + strictness \
     analyzer: every context extension a function (or anything it calls) \
     can produce is checked subsumed — up to refinement subsorting and \
     subordination strengthening — by the $(b,%worlds) declarations of \
     the families it appeals to, and every case-pattern meta-variable is \
     checked for a strict occurrence; verdicts carry stable codes \
     (E0720, W0721, W0722) and $(b,--json) writes the belr-worlds/1 \
     report"
  in
  Cmd.v
    (Cmd.info "worlds" ~doc)
    Term.(
      const (fun files v js ns me md ev we st tr pr ks ->
          run_worlds files v js ns me md ev we st tr pr ks)
      $ files_arg $ verbose_arg $ worlds_json_arg $ no_strict_arg
      $ max_errors_arg $ max_depth_arg $ max_eval_steps_arg $ werror_arg
      $ stats_arg $ trace_arg $ profile_arg $ kernel_stats_arg)

let modes_cmd =
  let doc =
    "check source files, then run the mode & uniqueness analyzer: each \
     $(b,%mode) declaration assigns input (+) and output (-) polarities \
     to a family's arguments, a groundness dataflow verifies every \
     clause can order its premises so calls are made with ground inputs \
     and deliver ground outputs, and a uniqueness pass flags clauses \
     whose inputs overlap but whose rigid outputs diverge; verdicts \
     carry stable codes (E0730, E0731, W0732, W0733) and $(b,--json) \
     writes the belr-modes/1 report"
  in
  Cmd.v
    (Cmd.info "modes" ~doc)
    Term.(
      const (fun files v js me md ev we st tr pr ks ->
          run_modes files v js me md ev we st tr pr ks)
      $ files_arg $ verbose_arg $ modes_json_arg $ max_errors_arg
      $ max_depth_arg $ max_eval_steps_arg $ werror_arg $ stats_arg
      $ trace_arg $ profile_arg $ kernel_stats_arg)

let markdown_arg =
  Arg.(
    value & flag
    & info [ "markdown" ]
        ~doc:
          "print the registry as the GitHub-flavored markdown table \
           embedded in README.md (the test suite keeps the two in sync)")

let codes_cmd =
  let doc =
    "list every stable diagnostic code belr can emit — code, class \
     (error/warning/bug family), default severity, and one-line \
     description — straight from the diagnostics registry, so the \
     listing cannot drift from the implementation"
  in
  Cmd.v
    (Cmd.info "codes" ~doc)
    Term.(const (fun md -> run_codes md) $ markdown_arg)

let deadline_ms_arg =
  Arg.(
    value & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "default wall-clock deadline per request in milliseconds \
           (overridable per request with \"deadline_ms\"); exceeding it \
           degrades the reply to a partial result with the stable E0903 \
           diagnostic instead of hanging the server")

let max_live_nodes_arg =
  Arg.(
    value & opt (some int) None
    & info [ "max-live-nodes" ] ~docv:"N"
        ~doc:
          "session memory watermark: when a request leaves more than \
           $(docv) live nodes in a session's term store, the store and \
           memo tables are cleared (reported as W0901); only sharing is \
           lost — subsequent requests rebuild terms on demand")

let log_file_arg =
  Arg.(
    value & opt (some string) None
    & info [ "log" ] ~docv:"FILE"
        ~doc:
          "append one structured JSON log line per request to $(docv) \
           (fields ts_ns, level, event, request_id, session, method, \
           status, duration_ms, decls rechecked/reused); the request_id \
           also appears in every reply and in trace spans, so the three \
           artifacts join on it")

let log_level_arg =
  Arg.(
    value & opt string "info"
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "minimum level written to the log: debug, info, warn, or error")

let slow_ms_arg =
  Arg.(
    value & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "log a warn-level serve.slow event, including the request's \
           telemetry span tree, for any request slower than $(docv) \
           milliseconds")

let serve_cmd =
  let doc =
    "run the long-lived JSON-line server (schema belr-serve/1): one \
     request object per stdin line (methods check, lint, total, stats, \
     reset, metrics, health), one reply object per stdout line; sessions \
     are isolated worlds, checking is incremental per declaration, and \
     every request is crash-only — malformed input, kernel faults, and \
     blown deadlines produce structured error replies, never a dead \
     server; $(b,--log), $(b,--slow-ms), and $(b,--metrics) add \
     production observability, correlated by per-request ids"
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const (fun dl wm me md ev lf ll sm mx ->
          run_serve dl wm me md ev lf ll sm mx)
      $ deadline_ms_arg $ max_live_nodes_arg $ max_errors_arg
      $ max_depth_arg $ max_eval_steps_arg $ log_file_arg $ log_level_arg
      $ slow_ms_arg $ metrics_arg)

let main =
  let doc =
    "a proof environment with contextual refinement types (Gaulin & \
     Pientka reproduction)"
  in
  Cmd.group
    (Cmd.info "belr" ~version:"1.0.0" ~doc)
    [ check_cmd; lint_cmd; total_cmd; worlds_cmd; modes_cmd; codes_cmd;
      serve_cmd ]

let () = exit (Cmd.eval' main)
