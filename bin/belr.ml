(** The [belr] command-line interface.

    - [belr check FILE…]   parse, elaborate, sort-check, and run the
      conservativity translation on each file (later files see the
      declarations of earlier ones).

    Checking is fault-tolerant: every independent error in a pass is
    reported (one declaration failing does not hide the rest), rendered
    diagnostics carry stable codes (see the Diagnostics section of
    README.md), and runaway recursion is cut off by a configurable depth
    budget instead of crashing the process.

    Diagnostics (errors, warnings, notes) go to stderr; stdout carries
    only the machine-readable summary.  Exit codes: 0 = clean (warnings
    allowed unless [--werror]), 1 = user errors, 2 = an internal belr bug
    was detected. *)

open Cmdliner
open Belr_support

let summarize sg =
  let n l = List.length l in
  let typs = ref 0 and srts = ref 0 and consts = ref 0 in
  let schemas = Belr_lf.Sign.all_schemas sg in
  let sschemas =
    List.filter
      (fun (_, (e : Belr_lf.Sign.sschema_entry)) ->
        let s = e.Belr_lf.Sign.h_name in
        String.length s = 0 || s.[String.length s - 1] <> '^')
      (Belr_lf.Sign.all_sschemas sg)
  in
  let recs = Belr_lf.Sign.all_recs sg in
  (* count via the public name table *)
  Hashtbl.iter
    (fun _ sym ->
      match sym with
      | Belr_lf.Sign.Sym_typ _ -> incr typs
      | Belr_lf.Sign.Sym_srt _ -> incr srts
      | Belr_lf.Sign.Sym_const _ -> incr consts
      | _ -> ())
    (Belr_lf.Sign.name_table sg);
  Fmt.pr "signature: %d type families, %d sort families, %d constants,@."
    !typs !srts !consts;
  Fmt.pr "           %d schemas, %d refinement schemas, %d functions@."
    (n schemas) (n sschemas) (n recs)

let print_recs sg =
  List.iter
    (fun (_, (r : Belr_lf.Sign.rec_entry)) ->
      Fmt.pr "rec %s : %a@." r.Belr_lf.Sign.r_name
        (Belr_syntax.Pp.pp_ctyp (Belr_lf.Sign.pp_env sg))
        r.Belr_lf.Sign.r_styp)
    (List.sort compare (Belr_lf.Sign.all_recs sg))

let run_check files verbose total max_errors max_depth werror =
  Limits.set_max_depth max_depth;
  let sink = Diagnostics.sink ~max_errors ~werror () in
  let sg = Belr_parser.Driver.check_files sink files in
  if total then Belr_parser.Driver.analyze sink sg;
  Diagnostics.dump Fmt.stderr sink;
  match Diagnostics.exit_code sink with
  | 0 ->
      Fmt.pr "%d file(s) checked successfully.@." (List.length files);
      summarize sg;
      if verbose then print_recs sg;
      0
  | code ->
      Fmt.epr "check failed: %a.@." Diagnostics.pp_summary sink;
      code

let files_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"FILE" ~doc:"source files (checked in order)")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"print checked functions")

let total_arg =
  Arg.(
    value & flag
    & info [ "total" ]
        ~doc:
          "also run the optional coverage and structural-termination \
           analyses (the paper's §6.1 extensions) and report warnings \
           (codes W0601/W0602) on stderr")

let max_errors_arg =
  Arg.(
    value & opt int 20
    & info [ "max-errors" ] ~docv:"N"
        ~doc:
          "stop after reporting $(docv) errors (0 = no limit); warnings \
           and notes do not count")

let max_depth_arg =
  Arg.(
    value & opt int Limits.default_max_depth
    & info [ "max-depth" ] ~docv:"N"
        ~doc:
          "depth budget for hereditary substitution, eta-expansion, and \
           unification; exceeding it yields the E0901 resource \
           diagnostic instead of a crash")

let werror_arg =
  Arg.(
    value & flag
    & info [ "werror" ] ~doc:"treat warnings as errors (exit code 1)")

let check_cmd =
  let doc = "parse, elaborate, and sort-check source files" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const (fun files v t me md we -> run_check files v t me md we)
      $ files_arg $ verbose_arg $ total_arg $ max_errors_arg $ max_depth_arg
      $ werror_arg)

let main =
  let doc =
    "a proof environment with contextual refinement types (Gaulin & \
     Pientka reproduction)"
  in
  Cmd.group (Cmd.info "belr" ~version:"1.0.0" ~doc) [ check_cmd ]

let () = exit (Cmd.eval' main)
